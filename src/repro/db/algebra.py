"""Positive relational algebra over pc-tables with lineage tracking.

Implements σ (select), π (project), ⋈ (natural and theta join), ∪
(union), × (product), and ρ (rename) with provenance-semiring lineage
composition: joins conjoin the lineage of the joined tuples, projection
under set semantics disjoins the lineage of merged duplicates, union
disjoins across operands [Green et al., PODS 2007].  This is the query
substrate that ``loadData()`` uses to import uncertain objects
(Section 2: "ENFrame supports positive relational algebra queries with
aggregates via the SPROUT query engine").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..events.expressions import Event, conj, disj
from .pctable import PCTable, PCTuple

Predicate = Callable[[Dict[str, Any]], bool]


def _bindings(table: PCTable, row: PCTuple) -> Dict[str, Any]:
    return dict(zip(table.schema, row.values))


def select(table: PCTable, predicate: Predicate, name: Optional[str] = None) -> PCTable:
    """σ: keep tuples satisfying a predicate over attribute bindings.

    The predicate must be deterministic (it sees attribute values, not
    lineage); selection never changes lineage.
    """
    result = PCTable(name or f"σ({table.name})", table.schema)
    for row in table:
        if predicate(_bindings(table, row)):
            result.tuples.append(row)
    return result


def project(
    table: PCTable,
    attributes: Sequence[str],
    name: Optional[str] = None,
    set_semantics: bool = True,
) -> PCTable:
    """π: restrict to the given attributes.

    Under set semantics, duplicate result tuples are merged and their
    lineage is the *disjunction* of the merged tuples' lineage — the
    possible-worlds-correct provenance of projection.
    """
    indices = [table.attribute_index(attribute) for attribute in attributes]
    result = PCTable(name or f"π({table.name})", attributes)
    if not set_semantics:
        for row in table:
            result.tuples.append(
                PCTuple(tuple(row.values[index] for index in indices), row.event)
            )
        return result
    merged: Dict[Tuple[Any, ...], List[Event]] = {}
    order: List[Tuple[Any, ...]] = []
    for row in table:
        key = tuple(row.values[index] for index in indices)
        if key not in merged:
            merged[key] = []
            order.append(key)
        merged[key].append(row.event)
    for key in order:
        result.tuples.append(PCTuple(key, disj(merged[key])))
    return result


def rename(table: PCTable, mapping: Dict[str, str], name: Optional[str] = None) -> PCTable:
    """ρ: rename attributes."""
    schema = tuple(mapping.get(attribute, attribute) for attribute in table.schema)
    result = PCTable(name or table.name, schema)
    result.tuples = list(table.tuples)
    return result


def product(left: PCTable, right: PCTable, name: Optional[str] = None) -> PCTable:
    """×: Cartesian product; lineage of a pair is the conjunction."""
    overlap = set(left.schema) & set(right.schema)
    if overlap:
        raise ValueError(
            f"product requires disjoint schemas; both have {sorted(overlap)} "
            "(use rename or natural_join)"
        )
    result = PCTable(name or f"({left.name}×{right.name})", left.schema + right.schema)
    for left_row in left:
        for right_row in right:
            result.tuples.append(
                PCTuple(
                    left_row.values + right_row.values,
                    conj([left_row.event, right_row.event]),
                )
            )
    return result


def natural_join(left: PCTable, right: PCTable, name: Optional[str] = None) -> PCTable:
    """⋈: natural join on shared attributes; lineage conjoins.

    Implemented as a hash join on the shared attributes.
    """
    shared = [attribute for attribute in left.schema if attribute in right.schema]
    right_only = [attribute for attribute in right.schema if attribute not in shared]
    left_key = [left.attribute_index(attribute) for attribute in shared]
    right_key = [right.attribute_index(attribute) for attribute in shared]
    right_rest = [right.attribute_index(attribute) for attribute in right_only]

    buckets: Dict[Tuple[Any, ...], List[PCTuple]] = {}
    for row in right:
        key = tuple(row.values[index] for index in right_key)
        buckets.setdefault(key, []).append(row)

    result = PCTable(
        name or f"({left.name}⋈{right.name})", tuple(left.schema) + tuple(right_only)
    )
    for left_row in left:
        key = tuple(left_row.values[index] for index in left_key)
        for right_row in buckets.get(key, ()):  # hash-join probe
            values = left_row.values + tuple(
                right_row.values[index] for index in right_rest
            )
            result.tuples.append(
                PCTuple(values, conj([left_row.event, right_row.event]))
            )
    return result


def theta_join(
    left: PCTable,
    right: PCTable,
    predicate: Predicate,
    name: Optional[str] = None,
) -> PCTable:
    """⋈θ: join on an arbitrary predicate over the combined bindings."""
    joined = product(left, right, name=name)
    return select(joined, predicate, name=name or joined.name)


def union(left: PCTable, right: PCTable, name: Optional[str] = None) -> PCTable:
    """∪: set union; duplicate tuples merge lineage disjunctively."""
    if left.schema != right.schema:
        raise ValueError(
            f"union requires identical schemas; got {left.schema} and {right.schema}"
        )
    merged: Dict[Tuple[Any, ...], List[Event]] = {}
    order: List[Tuple[Any, ...]] = []
    for table in (left, right):
        for row in table:
            if row.values not in merged:
                merged[row.values] = []
                order.append(row.values)
            merged[row.values].append(row.event)
    result = PCTable(name or f"({left.name}∪{right.name})", left.schema)
    for key in order:
        result.tuples.append(PCTuple(key, disj(merged[key])))
    return result
