"""A small fluent query API over pc-tables.

Wraps the algebra operators so that ``loadData()`` implementations and
examples can express queries compactly::

    readings = Query(sensors).where(lambda t: t["load"] > 0.5)\
                             .join(Query(substations))\
                             .project("substation", "discharge")\
                             .table()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..data.datasets import ProbabilisticDataset
from ..events.expressions import Event
from ..worlds.variables import VariablePool
from . import algebra
from .pctable import PCTable


class Query:
    """A lazy-ish query builder; every step materialises a pc-table."""

    def __init__(self, table: PCTable) -> None:
        self._table = table

    def table(self) -> PCTable:
        return self._table

    def where(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Query":
        return Query(algebra.select(self._table, predicate))

    def project(self, *attributes: str) -> "Query":
        return Query(algebra.project(self._table, attributes))

    def rename(self, **mapping: str) -> "Query":
        return Query(algebra.rename(self._table, mapping))

    def join(self, other: "Query") -> "Query":
        return Query(algebra.natural_join(self._table, other._table))

    def join_on(
        self, other: "Query", predicate: Callable[[Dict[str, Any]], bool]
    ) -> "Query":
        return Query(algebra.theta_join(self._table, other._table, predicate))

    def union(self, other: "Query") -> "Query":
        return Query(algebra.union(self._table, other._table))

    # ------------------------------------------------------------------
    # Bridges into the mining layer
    # ------------------------------------------------------------------

    def to_dataset(
        self, feature_attributes: Sequence[str], pool: VariablePool
    ) -> ProbabilisticDataset:
        """Materialise query results as a probabilistic dataset.

        Each result tuple becomes one uncertain object whose feature
        vector is read from the named attributes and whose lineage is
        the tuple's provenance — the ``loadData()`` path of the paper.
        """
        indices = [self._table.attribute_index(a) for a in feature_attributes]
        points = np.array(
            [[float(row.values[i]) for i in indices] for row in self._table],
            dtype=float,
        ).reshape(len(self._table), len(indices))
        events: List[Event] = [row.event for row in self._table]
        return ProbabilisticDataset(points, events, pool)
