"""Deprecated conditioning helpers (Koch & Olteanu, VLDB'08).

Conditioning is now a first-class registered scheme: ``exact-cond`` /
``lazy-cond`` in :mod:`repro.engine.registry` assert evidence on the
network, compile ``Φ ∧ C`` and ``C`` in one engine pass, and return
renormalised conditional bounds — reachable from ``run_scheme``,
``ENFrame.run(evidence=...)``, the CLI, the distributed compiler, and
``repro serve``.  For interactive evidence editing, use
:class:`repro.session.WhatIfSession`.

The two historical free functions below are thin wrappers over the
scheme path, kept for source compatibility.  They emit
``DeprecationWarning`` and will be removed; the arithmetic (interval
division with the ``ZeroDivisionError`` contract for almost-surely
false constraints) is unchanged — it now lives in
:mod:`repro.engine.conditioning`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Tuple

from ..engine.registry import run_scheme
from ..events.expressions import Event
from ..network.build import build_targets
from ..worlds.variables import VariablePool

_CONSTRAINT = "__constraint__"


def _cond_scheme(scheme: str) -> str:
    # The historical API took any Shannon scheme; epsilon-free requests
    # map to the exact conditional scheme, budgeted ones to lazy-cond
    # (run_conditioned itself falls back to exact when epsilon == 0).
    return "exact-cond" if scheme == "exact" else "lazy-cond"


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.db.conditioning.{name} is deprecated; use "
        "run_scheme('exact-cond', network, pool, evidence=[...]) or "
        "ENFrame.run(scheme='exact-cond', evidence=[...]) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def conditional_probability(
    event: Event,
    constraint: Event,
    pool: VariablePool,
    scheme: str = "exact",
    epsilon: float = 0.0,
) -> Tuple[float, float]:
    """Certified bounds on ``P(event | constraint)``.

    .. deprecated:: dispatch through the ``exact-cond`` / ``lazy-cond``
       registry schemes instead.
    """
    _deprecated("conditional_probability")
    return _condition(
        {"__event__": event}, constraint, pool, scheme, epsilon
    )["__event__"]


def condition_events(
    events: Dict[str, Event],
    constraint: Event,
    pool: VariablePool,
    scheme: str = "exact",
    epsilon: float = 0.0,
) -> Dict[str, Tuple[float, float]]:
    """Conditional-probability bounds for several events at once.

    .. deprecated:: dispatch through the ``exact-cond`` / ``lazy-cond``
       registry schemes instead.
    """
    _deprecated("condition_events")
    return _condition(dict(events), constraint, pool, scheme, epsilon)


def _condition(
    events: Dict[str, Event],
    constraint: Event,
    pool: VariablePool,
    scheme: str,
    epsilon: float,
) -> Dict[str, Tuple[float, float]]:
    network = build_targets(events, extra=[(_CONSTRAINT, constraint)])
    result = run_scheme(
        _cond_scheme(scheme),
        network,
        pool,
        evidence=[("event", _CONSTRAINT)],
        epsilon=epsilon,
    )
    return {name: result.bounds[name] for name in events}
