"""Conditioning probabilistic data on constraints (Koch & Olteanu, VLDB'08).

The paper lists conditioning as a natural source of correlations: after
asserting a constraint event ``C`` (e.g. a key constraint or a cleaning
rule), tuple probabilities become conditional probabilities
``P(Φ | C) = P(Φ ∧ C) / P(C)``.

ENFrame's compiler makes this easy: compile ``Φ ∧ C`` and ``C`` as joint
targets in a single bulk pass and divide the bounds.  The resulting
interval is a certified enclosure of the conditional probability.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..compile.compiler import compile_network
from ..events.expressions import Event, conj
from ..network.build import build_targets
from ..worlds.variables import VariablePool


def conditional_probability(
    event: Event,
    constraint: Event,
    pool: VariablePool,
    scheme: str = "exact",
    epsilon: float = 0.0,
) -> Tuple[float, float]:
    """Certified bounds on ``P(event | constraint)``.

    Compiles the conjunction and the constraint in one bulk pass; with an
    approximation scheme the returned interval accounts for both
    numerator and denominator error.  Raises ``ZeroDivisionError`` when
    the constraint is almost surely false.
    """
    network = build_targets(
        {"joint": conj([event, constraint]), "constraint": constraint}
    )
    result = compile_network(network, pool, scheme=scheme, epsilon=epsilon)
    joint_lower, joint_upper = result.bounds["joint"]
    constraint_lower, constraint_upper = result.bounds["constraint"]
    if constraint_upper <= 0.0:
        raise ZeroDivisionError("conditioning on an almost-surely-false event")
    lower = joint_lower / constraint_upper
    upper = 1.0 if constraint_lower <= 0.0 else min(1.0, joint_upper / constraint_lower)
    return lower, upper


def condition_events(
    events: Dict[str, Event],
    constraint: Event,
    pool: VariablePool,
    scheme: str = "exact",
    epsilon: float = 0.0,
) -> Dict[str, Tuple[float, float]]:
    """Conditional-probability bounds for several events at once."""
    targets = {
        name: conj([event, constraint]) for name, event in events.items()
    }
    targets["__constraint__"] = constraint
    network = build_targets(targets)
    result = compile_network(network, pool, scheme=scheme, epsilon=epsilon)
    constraint_lower, constraint_upper = result.bounds["__constraint__"]
    if constraint_upper <= 0.0:
        raise ZeroDivisionError("conditioning on an almost-surely-false event")
    bounds: Dict[str, Tuple[float, float]] = {}
    for name in events:
        joint_lower, joint_upper = result.bounds[name]
        lower = joint_lower / constraint_upper
        upper = (
            1.0
            if constraint_lower <= 0.0
            else min(1.0, joint_upper / constraint_lower)
        )
        bounds[name] = (lower, upper)
    return bounds
