"""Compiled kernel tiers for the masked engine and the packed bulk engine.

The masked evaluator's hot loop — ``push(var, value)`` walking the
variable's cone and recomputing dirty vertices — is pure per-vertex
dispatch over flat arrays (:class:`repro.engine.masked.MaskedEvaluator`).
This module compiles that loop out of Python:

* :func:`_masked_sweep` is the single-source kernel: one plain-Python
  function over NumPy arrays that is *numba-jittable as is* and also
  runs interpreted (the ``"interpreted"`` tier, used by tests when no
  compiler is available);
* the same algorithm is mirrored statement-for-statement in C
  (:data:`_C_TEMPLATE`), built once per process with the system C
  compiler into a shared library cached on disk (the ``"native"``
  tier);
* :class:`KernelMaskedEvaluator` swaps the evaluator's columns to
  shared NumPy buffers the kernel mutates in place, with trail frames
  kept as arrays and restored vectorized on ``pop()``.

Every tier must be *bit-identical* to the Python evaluator: the same
three-valued states, the same interval arithmetic (Python ``min``/
``max`` fold order, IEEE division, ``pow``), the same trail entries in
the same order — the property suite drives random walks against the
Python oracle, and :func:`get_backend` self-validates each backend on a
canned network before handing it out (falling back on any mismatch).

Tier selection (:func:`make_masked_evaluator`, reachable from every
scheme via ``make_evaluator(..., kernel=...)`` and ``repro cluster
--kernel``): ``"auto"`` prefers numba, then native, then pure Python;
naming an unavailable tier falls back down the same ladder.  The
``REPRO_KERNEL`` environment variable overrides the default (CI uses
``REPRO_KERNEL=python`` for the fallback leg).  Networks the kernels
cannot express (vector-valued c-values, negative ``POW`` exponents)
raise :class:`KernelUnsupportedError` and silently get the Python
evaluator.

The shared library also carries ``packed_eval``, the word-wise segment
kernel behind the bit-packed bulk evaluator (:mod:`repro.engine.packed`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import subprocess
import tempfile
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compile.partial import B_FALSE, B_TRUE, B_UNKNOWN, NumState
from ..network.nodes import EventNetwork, Kind
from .masked import (
    _TAG_BOOL,
    _TAG_NUM,
    MaskedEvaluator,
    MaskedProgram,
    masked_program,
)

_K_TRUE = int(Kind.TRUE)
_K_FALSE = int(Kind.FALSE)
_K_VAR = int(Kind.VAR)
_K_NOT = int(Kind.NOT)
_K_AND = int(Kind.AND)
_K_OR = int(Kind.OR)
_K_ATOM = int(Kind.ATOM)
_K_GUARD = int(Kind.GUARD)
_K_COND = int(Kind.COND)
_K_SUM = int(Kind.SUM)
_K_PROD = int(Kind.PROD)
_K_INV = int(Kind.INV)
_K_POW = int(Kind.POW)
_K_DIST = int(Kind.DIST)
_K_LOOP_IN = int(Kind.LOOP_IN)

_NAN = float("nan")
_INF = float("inf")

#: Public kernel tier names, in fallback order (``auto`` resolves to
#: the first available compiled tier; ``interpreted`` runs the jittable
#: kernel source in plain Python — slow, exists so the kernel algorithm
#: is exercised even where neither numba nor a C compiler is present;
#: ``python`` is the original :class:`MaskedEvaluator`).
KERNEL_NAMES = ("auto", "numba", "native", "interpreted", "python")

#: Why a backend was rejected, by name (introspection/debugging only).
BACKEND_ERRORS: Dict[str, str] = {}

#: How ``result.extra["kernel_tier"]`` encodes the tier that ran
#: (``extra`` is a float dict; mirrors ``_EXECUTION_CODES``).  "numpy"
#: is the packed bulk evaluator's vectorized no-compiler fallback.
KERNEL_TIER_CODES: Dict[str, float] = {
    "python": 0.0,
    "interpreted": 1.0,
    "native": 2.0,
    "numba": 3.0,
    "numpy": 4.0,
}


class KernelUnsupportedError(Exception):
    """The network uses features the compiled kernels cannot express."""


# ----------------------------------------------------------------------
# The single-source sweep kernel (plain Python over NumPy arrays).
#
# This function is BOTH executed interpreted and handed to numba.njit
# verbatim, and the C translation below mirrors it statement for
# statement — when editing, change all three in lockstep and mind the
# exact Python semantics being reproduced (min/max fold order, NaN
# comparisons, pow): repro.engine.masked is the oracle.
# ----------------------------------------------------------------------


def _masked_sweep(
    seeds,
    cone,
    assign,
    kinds,
    var_index,
    atom_op,
    pow_exp,
    metric,
    child_off,
    child_idx,
    par_off,
    par_idx,
    is_bool,
    guard_val,
    b,
    lo,
    hi,
    mu,
    md,
    resolved,
    dirty,
    t_tag,
    t_vid,
    t_b,
    t_lo,
    t_hi,
    t_mu,
    t_md,
):
    """One cone sweep; returns ``(trail entries written, evals)``."""
    pending = 0
    for i in range(seeds.shape[0]):
        s = seeds[i]
        if dirty[s] == 0:
            dirty[s] = 1
            pending += 1
    n_trail = 0
    evals = 0
    for ci in range(cone.shape[0]):
        vid = cone[ci]
        if dirty[vid] == 0:
            continue
        dirty[vid] = 0
        pending -= 1
        if resolved[vid] == 0:
            evals += 1
            changed = False
            kind = kinds[vid]
            c0 = child_off[vid]
            c1 = child_off[vid + 1]
            if is_bool[vid] != 0:
                # ---- Boolean vertex (MaskedEvaluator._compute_bool) --
                new = B_UNKNOWN
                if kind == _K_VAR:
                    a = assign[var_index[vid]]
                    if a < 0:
                        new = B_UNKNOWN
                    elif a == 0:
                        new = B_FALSE
                    else:
                        new = B_TRUE
                elif kind == _K_AND:
                    new = B_TRUE
                    for e in range(c0, c1):
                        v = b[child_idx[e]]
                        if v == B_FALSE:
                            new = B_FALSE
                            break
                        if v == B_UNKNOWN:
                            new = B_UNKNOWN
                elif kind == _K_OR:
                    new = B_FALSE
                    for e in range(c0, c1):
                        v = b[child_idx[e]]
                        if v == B_TRUE:
                            new = B_TRUE
                            break
                        if v == B_UNKNOWN:
                            new = B_UNKNOWN
                elif kind == _K_NOT:
                    v = b[child_idx[c0]]
                    if v == B_UNKNOWN:
                        new = B_UNKNOWN
                    elif v == B_FALSE:
                        new = B_TRUE
                    else:
                        new = B_FALSE
                elif kind == _K_ATOM:
                    lft = child_idx[c0]
                    rgt = child_idx[c0 + 1]
                    if md[lft] == 0 or md[rgt] == 0:
                        new = B_TRUE
                    else:
                        op = atom_op[vid]
                        llo = lo[lft]
                        lhi = hi[lft]
                        rlo = lo[rgt]
                        rhi = hi[rgt]
                        always = False
                        never = False
                        if op == 0:  # <=
                            always = lhi <= rlo
                            never = rhi < llo
                        elif op == 1:  # <
                            always = lhi < rlo
                            never = rhi <= llo
                        elif op == 2:  # >=
                            always = rhi <= llo
                            never = lhi < rlo
                        elif op == 3:  # >
                            always = rhi < llo
                            never = lhi <= rlo
                        else:  # ==
                            always = (
                                mu[lft] == 0
                                and mu[rgt] == 0
                                and llo == lhi
                                and rlo == rhi
                                and llo == rlo
                            )
                            never = lhi < rlo or rhi < llo
                        if always:
                            new = B_TRUE
                        elif never and mu[lft] == 0 and mu[rgt] == 0:
                            new = B_FALSE
                        else:
                            new = B_UNKNOWN
                elif kind == _K_TRUE:
                    new = B_TRUE
                elif kind == _K_FALSE:
                    new = B_FALSE
                else:  # LOOP_IN copy
                    new = b[child_idx[c0]]
                old = b[vid]
                if new == old:
                    if new != B_UNKNOWN:
                        # Same value, newly stable: resolve, don't propagate.
                        t_tag[n_trail] = 0
                        t_vid[n_trail] = vid
                        t_b[n_trail] = old
                        n_trail += 1
                        resolved[vid] = 1
                else:
                    t_tag[n_trail] = 0
                    t_vid[n_trail] = vid
                    t_b[n_trail] = old
                    n_trail += 1
                    b[vid] = new
                    if new != B_UNKNOWN:
                        resolved[vid] = 1
                    changed = True
            else:
                # ---- scalar numeric vertex (_compute_num_scalar) ----
                nlo = _NAN
                nhi = _NAN
                nmu = 1
                nmd = 0
                if kind == _K_GUARD:
                    ev = b[child_idx[c0]]
                    g = guard_val[vid]
                    if ev == B_TRUE:
                        nlo = g
                        nhi = g
                        nmu = 0
                        nmd = 1
                    elif ev == B_FALSE:
                        pass  # undefined
                    else:
                        nlo = g
                        nhi = g
                        nmu = 1
                        nmd = 1
                elif kind == _K_COND:
                    ev = b[child_idx[c0]]
                    ch = child_idx[c0 + 1]
                    if ev == B_FALSE or md[ch] == 0:
                        pass  # undefined
                    elif ev == B_TRUE:
                        nlo = lo[ch]
                        nhi = hi[ch]
                        nmu = mu[ch]
                        nmd = 1
                    else:
                        nlo = lo[ch]
                        nhi = hi[ch]
                        nmu = 1
                        nmd = 1
                elif kind == _K_SUM:
                    # ``u`` is the identity: accumulator starts undefined.
                    a_lo = _NAN
                    a_hi = _NAN
                    a_mu = 1
                    a_md = 0
                    for e in range(c0, c1):
                        ch = child_idx[e]
                        c_md = md[ch]
                        c_mu = mu[ch]
                        c_lo = lo[ch]
                        c_hi = hi[ch]
                        x_lo = 0.0
                        x_hi = 0.0
                        has = 0
                        x_md = 0
                        if a_md != 0 and c_md != 0:
                            x_lo = a_lo + c_lo
                            x_hi = a_hi + c_hi
                            has = 1
                            x_md = 1
                        if a_md != 0 and c_mu != 0:
                            if has == 0:
                                x_lo = a_lo
                                x_hi = a_hi
                                has = 1
                            else:
                                if a_lo < x_lo:
                                    x_lo = a_lo
                                if a_hi > x_hi:
                                    x_hi = a_hi
                            x_md = 1
                        if c_md != 0 and a_mu != 0:
                            if has == 0:
                                x_lo = c_lo
                                x_hi = c_hi
                                has = 1
                            else:
                                if c_lo < x_lo:
                                    x_lo = c_lo
                                if c_hi > x_hi:
                                    x_hi = c_hi
                            x_md = 1
                        if a_mu != 0 and c_mu != 0:
                            a_mu = 1
                        else:
                            a_mu = 0
                        if x_md != 0:
                            a_lo = x_lo
                            a_hi = x_hi
                            a_md = 1
                        else:
                            a_lo = _NAN
                            a_hi = _NAN
                            a_md = 0
                            a_mu = 1  # fully undefined again
                    if a_md != 0:
                        nlo = a_lo
                        nhi = a_hi
                        nmu = a_mu
                        nmd = 1
                elif kind == _K_PROD:
                    a_lo = 1.0
                    a_hi = 1.0
                    a_mu = 0
                    a_md = 1
                    for e in range(c0, c1):
                        ch = child_idx[e]
                        if mu[ch] != 0:
                            a_mu = 1
                        if md[ch] == 0:
                            a_md = 0  # u annihilates for good
                            break
                        c_lo = lo[ch]
                        c_hi = hi[ch]
                        p1 = a_lo * c_lo
                        p2 = a_lo * c_hi
                        p3 = a_hi * c_lo
                        p4 = a_hi * c_hi
                        m = p1
                        if p2 < m:
                            m = p2
                        if p3 < m:
                            m = p3
                        if p4 < m:
                            m = p4
                        q = p1
                        if p2 > q:
                            q = p2
                        if p3 > q:
                            q = p3
                        if p4 > q:
                            q = p4
                        a_lo = m
                        a_hi = q
                    if a_md != 0:
                        nlo = a_lo
                        nhi = a_hi
                        nmu = a_mu
                        nmd = 1
                elif kind == _K_INV:
                    ch = child_idx[c0]
                    if md[ch] != 0:
                        c_lo = lo[ch]
                        c_hi = hi[ch]
                        if c_lo > 0 or c_hi < 0:
                            nlo = 1.0 / c_hi
                            nhi = 1.0 / c_lo
                            nmu = mu[ch]
                            nmd = 1
                        elif c_lo == 0 and c_hi == 0:
                            pass  # undefined
                        elif c_lo == 0:
                            nlo = 1.0 / c_hi
                            nhi = _INF
                            nmu = 1
                            nmd = 1
                        elif c_hi == 0:
                            nlo = -_INF
                            nhi = 1.0 / c_lo
                            nmu = 1
                            nmd = 1
                        else:
                            nlo = -_INF
                            nhi = _INF
                            nmu = 1
                            nmd = 1
                elif kind == _K_POW:
                    exp = pow_exp[vid]  # >= 0: negative gated at build
                    ch = child_idx[c0]
                    if md[ch] != 0:
                        c_lo = lo[ch]
                        c_hi = hi[ch]
                        if exp % 2 == 1 or c_lo >= 0.0:
                            nlo = c_lo**exp
                            nhi = c_hi**exp
                        else:
                            abs_lo = -c_lo if c_lo < 0.0 else c_lo
                            abs_hi = -c_hi if c_hi < 0.0 else c_hi
                            mn = abs_lo if abs_lo <= abs_hi else abs_hi
                            mx = abs_lo if abs_lo >= abs_hi else abs_hi
                            if c_lo <= 0.0 and 0.0 <= c_hi:
                                nlo = 0.0
                            else:
                                nlo = mn**exp
                            nhi = mx**exp
                        nmu = mu[ch]
                        nmd = 1
                elif kind == _K_DIST:
                    lft = child_idx[c0]
                    rgt = child_idx[c0 + 1]
                    if mu[lft] != 0 or mu[rgt] != 0:
                        d_mu = 1
                    else:
                        d_mu = 0
                    if md[lft] != 0 and md[rgt] != 0:
                        diff_lo = lo[lft] - hi[rgt]
                        diff_hi = hi[lft] - lo[rgt]
                        a1 = -diff_lo if diff_lo < 0.0 else diff_lo
                        a2 = -diff_hi if diff_hi < 0.0 else diff_hi
                        if diff_lo <= 0.0 and 0.0 <= diff_hi:
                            abs_lo = 0.0
                        else:
                            abs_lo = a1 if a1 <= a2 else a2
                        abs_hi = a1 if a1 >= a2 else a2
                        if metric[vid] == 1:  # sqeuclidean
                            nlo = abs_lo * abs_lo
                            nhi = abs_hi * abs_hi
                        else:  # euclidean == manhattan on scalars
                            nlo = abs_lo
                            nhi = abs_hi
                        nmu = d_mu
                        nmd = 1
                else:  # LOOP_IN copy
                    ch = child_idx[c0]
                    nlo = lo[ch]
                    nhi = hi[ch]
                    nmu = mu[ch]
                    nmd = md[ch]
                # ---- write-back (_write_num_scalar) -----------------
                res = (nmd == 0 and nmu != 0) or (
                    nmd != 0 and nmu == 0 and nlo == nhi
                )
                o_lo = lo[vid]
                o_hi = hi[vid]
                o_mu = mu[vid]
                o_md = md[vid]
                unchanged = (
                    (o_md != 0) == (nmd != 0)
                    and (o_mu != 0) == (nmu != 0)
                    and (nmd == 0 or (o_lo == nlo and o_hi == nhi))
                )
                if unchanged:
                    if res:
                        t_tag[n_trail] = 1
                        t_vid[n_trail] = vid
                        t_lo[n_trail] = o_lo
                        t_hi[n_trail] = o_hi
                        t_mu[n_trail] = o_mu
                        t_md[n_trail] = o_md
                        n_trail += 1
                        resolved[vid] = 1
                else:
                    t_tag[n_trail] = 1
                    t_vid[n_trail] = vid
                    t_lo[n_trail] = o_lo
                    t_hi[n_trail] = o_hi
                    t_mu[n_trail] = o_mu
                    t_md[n_trail] = o_md
                    n_trail += 1
                    lo[vid] = nlo
                    hi[vid] = nhi
                    mu[vid] = nmu
                    md[vid] = nmd
                    if res:
                        resolved[vid] = 1
                    changed = True
            if changed:
                for e in range(par_off[vid], par_off[vid + 1]):
                    p = par_idx[e]
                    if dirty[p] == 0:
                        dirty[p] = 1
                        pending += 1
        if pending == 0:
            break
    return n_trail, evals


def _packed_segments(ops, out, arg_off, arg_idx, matrix, tail):
    """Evaluate one run of packed AND/OR/NOT ops over the word matrix.

    ``matrix`` is ``(slots, words)`` uint64; ``tail`` masks bits past
    the world count in the last word (the packed-column invariant:
    those bits are always zero).  Op codes: 0 = AND, 1 = OR, 2 = NOT.
    """
    n_words = matrix.shape[1]
    if n_words == 0:
        return 0
    last = n_words - 1
    for i in range(ops.shape[0]):
        op = ops[i]
        o = out[i]
        a0 = arg_off[i]
        a1 = arg_off[i + 1]
        if op == 2:
            src = arg_idx[a0]
            for w in range(n_words):
                matrix[o, w] = ~matrix[src, w]
            matrix[o, last] = matrix[o, last] & tail
        elif op == 0:
            for w in range(n_words):
                acc = ~np.uint64(0)
                for e in range(a0, a1):
                    acc = acc & matrix[arg_idx[e], w]
                matrix[o, w] = acc
            matrix[o, last] = matrix[o, last] & tail
        else:
            for w in range(n_words):
                acc = np.uint64(0)
                for e in range(a0, a1):
                    acc = acc | matrix[arg_idx[e], w]
                matrix[o, w] = acc
    return 0


# ----------------------------------------------------------------------
# The native (C) twin, built with the system compiler and loaded via
# ctypes.  The source is generic over programs (all structure arrives
# as runtime arrays), so one shared library serves the whole process;
# it is cached on disk keyed by a hash of the generated source.
# ----------------------------------------------------------------------

_C_TEMPLATE = r"""
#include <math.h>
#include <stdint.h>

#define K_TRUE {K_TRUE}
#define K_FALSE {K_FALSE}
#define K_VAR {K_VAR}
#define K_NOT {K_NOT}
#define K_AND {K_AND}
#define K_OR {K_OR}
#define K_ATOM {K_ATOM}
#define K_GUARD {K_GUARD}
#define K_COND {K_COND}
#define K_SUM {K_SUM}
#define K_PROD {K_PROD}
#define K_INV {K_INV}
#define K_POW {K_POW}
#define K_DIST {K_DIST}
#define K_LOOP_IN {K_LOOP_IN}

#define B_F {B_FALSE}
#define B_T {B_TRUE}
#define B_U {B_UNKNOWN}

int64_t masked_sweep(
    const int64_t *seeds, int64_t n_seeds,
    const int64_t *cone, int64_t n_cone,
    const int8_t *assign,
    const int64_t *kinds, const int64_t *var_index, const int64_t *atom_op,
    const int64_t *pow_exp, const int64_t *metric,
    const int64_t *child_off, const int64_t *child_idx,
    const int64_t *par_off, const int64_t *par_idx,
    const uint8_t *is_bool, const double *guard_val,
    int8_t *b, double *lo, double *hi,
    uint8_t *mu, uint8_t *md, uint8_t *resolved, uint8_t *dirty,
    uint8_t *t_tag, int64_t *t_vid, int8_t *t_b,
    double *t_lo, double *t_hi, uint8_t *t_mu, uint8_t *t_md,
    int64_t *evals_out)
{{
    int64_t pending = 0;
    for (int64_t i = 0; i < n_seeds; i++) {{
        int64_t s = seeds[i];
        if (!dirty[s]) {{ dirty[s] = 1; pending++; }}
    }}
    int64_t n_trail = 0;
    int64_t evals = 0;
    for (int64_t ci = 0; ci < n_cone; ci++) {{
        int64_t vid = cone[ci];
        if (!dirty[vid]) continue;
        dirty[vid] = 0;
        pending--;
        if (!resolved[vid]) {{
            evals++;
            int changed = 0;
            int64_t kind = kinds[vid];
            int64_t c0 = child_off[vid];
            int64_t c1 = child_off[vid + 1];
            if (is_bool[vid]) {{
                int8_t nw = B_U;
                if (kind == K_VAR) {{
                    int8_t a = assign[var_index[vid]];
                    nw = (a < 0) ? B_U : (a == 0 ? B_F : B_T);
                }} else if (kind == K_AND) {{
                    nw = B_T;
                    for (int64_t e = c0; e < c1; e++) {{
                        int8_t v = b[child_idx[e]];
                        if (v == B_F) {{ nw = B_F; break; }}
                        if (v == B_U) nw = B_U;
                    }}
                }} else if (kind == K_OR) {{
                    nw = B_F;
                    for (int64_t e = c0; e < c1; e++) {{
                        int8_t v = b[child_idx[e]];
                        if (v == B_T) {{ nw = B_T; break; }}
                        if (v == B_U) nw = B_U;
                    }}
                }} else if (kind == K_NOT) {{
                    int8_t v = b[child_idx[c0]];
                    nw = (v == B_U) ? B_U : (v == B_F ? B_T : B_F);
                }} else if (kind == K_ATOM) {{
                    int64_t lft = child_idx[c0];
                    int64_t rgt = child_idx[c0 + 1];
                    if (!md[lft] || !md[rgt]) {{
                        nw = B_T;
                    }} else {{
                        int64_t op = atom_op[vid];
                        double llo = lo[lft], lhi = hi[lft];
                        double rlo = lo[rgt], rhi = hi[rgt];
                        int always = 0, never = 0;
                        if (op == 0) {{ always = lhi <= rlo; never = rhi < llo; }}
                        else if (op == 1) {{ always = lhi < rlo; never = rhi <= llo; }}
                        else if (op == 2) {{ always = rhi <= llo; never = lhi < rlo; }}
                        else if (op == 3) {{ always = rhi < llo; never = lhi <= rlo; }}
                        else {{
                            always = !mu[lft] && !mu[rgt] && llo == lhi
                                && rlo == rhi && llo == rlo;
                            never = lhi < rlo || rhi < llo;
                        }}
                        if (always) nw = B_T;
                        else if (never && !mu[lft] && !mu[rgt]) nw = B_F;
                        else nw = B_U;
                    }}
                }} else if (kind == K_TRUE) {{
                    nw = B_T;
                }} else if (kind == K_FALSE) {{
                    nw = B_F;
                }} else {{
                    nw = b[child_idx[c0]];
                }}
                int8_t old = b[vid];
                if (nw == old) {{
                    if (nw != B_U) {{
                        t_tag[n_trail] = 0; t_vid[n_trail] = vid;
                        t_b[n_trail] = old; n_trail++;
                        resolved[vid] = 1;
                    }}
                }} else {{
                    t_tag[n_trail] = 0; t_vid[n_trail] = vid;
                    t_b[n_trail] = old; n_trail++;
                    b[vid] = nw;
                    if (nw != B_U) resolved[vid] = 1;
                    changed = 1;
                }}
            }} else {{
                double nlo = NAN, nhi = NAN;
                int nmu = 1, nmd = 0;
                if (kind == K_GUARD) {{
                    int8_t ev = b[child_idx[c0]];
                    double g = guard_val[vid];
                    if (ev == B_T) {{ nlo = g; nhi = g; nmu = 0; nmd = 1; }}
                    else if (ev == B_F) {{ }}
                    else {{ nlo = g; nhi = g; nmu = 1; nmd = 1; }}
                }} else if (kind == K_COND) {{
                    int8_t ev = b[child_idx[c0]];
                    int64_t ch = child_idx[c0 + 1];
                    if (ev == B_F || !md[ch]) {{ }}
                    else if (ev == B_T) {{
                        nlo = lo[ch]; nhi = hi[ch]; nmu = mu[ch]; nmd = 1;
                    }} else {{
                        nlo = lo[ch]; nhi = hi[ch]; nmu = 1; nmd = 1;
                    }}
                }} else if (kind == K_SUM) {{
                    double a_lo = NAN, a_hi = NAN;
                    int a_mu = 1, a_md = 0;
                    for (int64_t e = c0; e < c1; e++) {{
                        int64_t ch = child_idx[e];
                        int c_md = md[ch], c_mu = mu[ch];
                        double c_lo = lo[ch], c_hi = hi[ch];
                        double x_lo = 0.0, x_hi = 0.0;
                        int has = 0, x_md = 0;
                        if (a_md && c_md) {{
                            x_lo = a_lo + c_lo; x_hi = a_hi + c_hi;
                            has = 1; x_md = 1;
                        }}
                        if (a_md && c_mu) {{
                            if (!has) {{ x_lo = a_lo; x_hi = a_hi; has = 1; }}
                            else {{
                                if (a_lo < x_lo) x_lo = a_lo;
                                if (a_hi > x_hi) x_hi = a_hi;
                            }}
                            x_md = 1;
                        }}
                        if (c_md && a_mu) {{
                            if (!has) {{ x_lo = c_lo; x_hi = c_hi; has = 1; }}
                            else {{
                                if (c_lo < x_lo) x_lo = c_lo;
                                if (c_hi > x_hi) x_hi = c_hi;
                            }}
                            x_md = 1;
                        }}
                        a_mu = a_mu && c_mu;
                        if (x_md) {{ a_lo = x_lo; a_hi = x_hi; a_md = 1; }}
                        else {{ a_lo = NAN; a_hi = NAN; a_md = 0; a_mu = 1; }}
                    }}
                    if (a_md) {{ nlo = a_lo; nhi = a_hi; nmu = a_mu; nmd = 1; }}
                }} else if (kind == K_PROD) {{
                    double a_lo = 1.0, a_hi = 1.0;
                    int a_mu = 0, a_md = 1;
                    for (int64_t e = c0; e < c1; e++) {{
                        int64_t ch = child_idx[e];
                        if (mu[ch]) a_mu = 1;
                        if (!md[ch]) {{ a_md = 0; break; }}
                        double c_lo = lo[ch], c_hi = hi[ch];
                        double p1 = a_lo * c_lo, p2 = a_lo * c_hi;
                        double p3 = a_hi * c_lo, p4 = a_hi * c_hi;
                        double m = p1;
                        if (p2 < m) m = p2;
                        if (p3 < m) m = p3;
                        if (p4 < m) m = p4;
                        double q = p1;
                        if (p2 > q) q = p2;
                        if (p3 > q) q = p3;
                        if (p4 > q) q = p4;
                        a_lo = m; a_hi = q;
                    }}
                    if (a_md) {{ nlo = a_lo; nhi = a_hi; nmu = a_mu; nmd = 1; }}
                }} else if (kind == K_INV) {{
                    int64_t ch = child_idx[c0];
                    if (md[ch]) {{
                        double c_lo = lo[ch], c_hi = hi[ch];
                        if (c_lo > 0 || c_hi < 0) {{
                            nlo = 1.0 / c_hi; nhi = 1.0 / c_lo;
                            nmu = mu[ch]; nmd = 1;
                        }} else if (c_lo == 0 && c_hi == 0) {{ }}
                        else if (c_lo == 0) {{
                            nlo = 1.0 / c_hi; nhi = INFINITY; nmu = 1; nmd = 1;
                        }} else if (c_hi == 0) {{
                            nlo = -INFINITY; nhi = 1.0 / c_lo; nmu = 1; nmd = 1;
                        }} else {{
                            nlo = -INFINITY; nhi = INFINITY; nmu = 1; nmd = 1;
                        }}
                    }}
                }} else if (kind == K_POW) {{
                    int64_t exp = pow_exp[vid];
                    int64_t ch = child_idx[c0];
                    if (md[ch]) {{
                        double c_lo = lo[ch], c_hi = hi[ch];
                        if (exp % 2 == 1 || c_lo >= 0.0) {{
                            nlo = pow(c_lo, (double)exp);
                            nhi = pow(c_hi, (double)exp);
                        }} else {{
                            double abs_lo = c_lo < 0.0 ? -c_lo : c_lo;
                            double abs_hi = c_hi < 0.0 ? -c_hi : c_hi;
                            double mn = abs_lo <= abs_hi ? abs_lo : abs_hi;
                            double mx = abs_lo >= abs_hi ? abs_lo : abs_hi;
                            if (c_lo <= 0.0 && 0.0 <= c_hi) nlo = 0.0;
                            else nlo = pow(mn, (double)exp);
                            nhi = pow(mx, (double)exp);
                        }}
                        nmu = mu[ch]; nmd = 1;
                    }}
                }} else if (kind == K_DIST) {{
                    int64_t lft = child_idx[c0];
                    int64_t rgt = child_idx[c0 + 1];
                    int d_mu = (mu[lft] || mu[rgt]) ? 1 : 0;
                    if (md[lft] && md[rgt]) {{
                        double diff_lo = lo[lft] - hi[rgt];
                        double diff_hi = hi[lft] - lo[rgt];
                        double a1 = diff_lo < 0.0 ? -diff_lo : diff_lo;
                        double a2 = diff_hi < 0.0 ? -diff_hi : diff_hi;
                        double abs_lo;
                        if (diff_lo <= 0.0 && 0.0 <= diff_hi) abs_lo = 0.0;
                        else abs_lo = a1 <= a2 ? a1 : a2;
                        double abs_hi = a1 >= a2 ? a1 : a2;
                        if (metric[vid] == 1) {{
                            nlo = abs_lo * abs_lo; nhi = abs_hi * abs_hi;
                        }} else {{
                            nlo = abs_lo; nhi = abs_hi;
                        }}
                        nmu = d_mu; nmd = 1;
                    }}
                }} else {{
                    int64_t ch = child_idx[c0];
                    nlo = lo[ch]; nhi = hi[ch]; nmu = mu[ch]; nmd = md[ch];
                }}
                int res = (!nmd && nmu) || (nmd && !nmu && nlo == nhi);
                double o_lo = lo[vid], o_hi = hi[vid];
                uint8_t o_mu = mu[vid], o_md = md[vid];
                int unchanged = ((o_md != 0) == (nmd != 0))
                    && ((o_mu != 0) == (nmu != 0))
                    && (!nmd || (o_lo == nlo && o_hi == nhi));
                if (unchanged) {{
                    if (res) {{
                        t_tag[n_trail] = 1; t_vid[n_trail] = vid;
                        t_lo[n_trail] = o_lo; t_hi[n_trail] = o_hi;
                        t_mu[n_trail] = o_mu; t_md[n_trail] = o_md;
                        n_trail++;
                        resolved[vid] = 1;
                    }}
                }} else {{
                    t_tag[n_trail] = 1; t_vid[n_trail] = vid;
                    t_lo[n_trail] = o_lo; t_hi[n_trail] = o_hi;
                    t_mu[n_trail] = o_mu; t_md[n_trail] = o_md;
                    n_trail++;
                    lo[vid] = nlo; hi[vid] = nhi;
                    mu[vid] = (uint8_t)nmu; md[vid] = (uint8_t)nmd;
                    if (res) resolved[vid] = 1;
                    changed = 1;
                }}
            }}
            if (changed) {{
                for (int64_t e = par_off[vid]; e < par_off[vid + 1]; e++) {{
                    int64_t p = par_idx[e];
                    if (!dirty[p]) {{ dirty[p] = 1; pending++; }}
                }}
            }}
        }}
        if (pending == 0) break;
    }}
    *evals_out = evals;
    return n_trail;
}}

void packed_eval(
    int64_t n_ops, const int64_t *ops, const int64_t *out,
    const int64_t *arg_off, const int64_t *arg_idx,
    uint64_t *matrix, int64_t n_words, uint64_t tail)
{{
    if (n_words <= 0) return;
    for (int64_t i = 0; i < n_ops; i++) {{
        int64_t op = ops[i];
        uint64_t *dst = matrix + out[i] * n_words;
        int64_t a0 = arg_off[i], a1 = arg_off[i + 1];
        if (op == 2) {{
            const uint64_t *src = matrix + arg_idx[a0] * n_words;
            for (int64_t w = 0; w < n_words; w++) dst[w] = ~src[w];
            dst[n_words - 1] &= tail;
        }} else if (op == 0) {{
            for (int64_t w = 0; w < n_words; w++) {{
                uint64_t acc = ~(uint64_t)0;
                for (int64_t e = a0; e < a1; e++)
                    acc &= matrix[arg_idx[e] * n_words + w];
                dst[w] = acc;
            }}
            dst[n_words - 1] &= tail;
        }} else {{
            for (int64_t w = 0; w < n_words; w++) {{
                uint64_t acc = 0;
                for (int64_t e = a0; e < a1; e++)
                    acc |= matrix[arg_idx[e] * n_words + w];
                dst[w] = acc;
            }}
        }}
    }}
}}
"""


def _c_source() -> str:
    return _C_TEMPLATE.format(
        K_TRUE=_K_TRUE,
        K_FALSE=_K_FALSE,
        K_VAR=_K_VAR,
        K_NOT=_K_NOT,
        K_AND=_K_AND,
        K_OR=_K_OR,
        K_ATOM=_K_ATOM,
        K_GUARD=_K_GUARD,
        K_COND=_K_COND,
        K_SUM=_K_SUM,
        K_PROD=_K_PROD,
        K_INV=_K_INV,
        K_POW=_K_POW,
        K_DIST=_K_DIST,
        K_LOOP_IN=_K_LOOP_IN,
        B_FALSE=B_FALSE,
        B_TRUE=B_TRUE,
        B_UNKNOWN=B_UNKNOWN,
    )


def _native_cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return configured
    return os.path.join(
        tempfile.gettempdir(), f"repro-kernels-{os.getuid()}"
    )


def _build_native_library() -> ctypes.CDLL:
    """Compile (or reuse) the shared library and load it.

    ``REPRO_KERNEL_CFLAGS`` appends extra compiler flags (the ASan/UBSan
    CI leg passes ``-fsanitize=address,undefined``); the flags are part
    of the cache key so sanitized and plain builds never collide.
    """
    source = _c_source()
    extra_flags = shlex.split(os.environ.get("REPRO_KERNEL_CFLAGS", ""))
    digest = hashlib.sha256(
        ("\x00".join([source] + extra_flags)).encode()
    ).hexdigest()[:16]
    cache_dir = _native_cache_dir()
    os.makedirs(cache_dir, exist_ok=True)
    so_path = os.path.join(cache_dir, f"masked_sweep_{digest}.so")
    if not os.path.exists(so_path):
        c_path = os.path.join(cache_dir, f"masked_sweep_{digest}_{os.getpid()}.c")
        tmp_so = so_path + f".{os.getpid()}.tmp"
        with open(c_path, "w") as handle:
            handle.write(source)
        try:
            compiler = os.environ.get("CC", "cc")
            flags = ["-O2", "-shared", "-fPIC"] + extra_flags
            try:
                subprocess.run(
                    [compiler] + flags + ["-o", tmp_so, c_path, "-lm"],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
            except (FileNotFoundError, PermissionError):
                subprocess.run(
                    ["gcc"] + flags + ["-o", tmp_so, c_path, "-lm"],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
            os.replace(tmp_so, so_path)
        finally:
            for stale in (c_path, tmp_so):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
    return ctypes.CDLL(so_path)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class _Backend:
    """One compiled (or interpreted) kernel tier.

    ``sweep_py`` is a callable taking the full array argument list of
    :func:`_masked_sweep` (numba / interpreted tiers); ``sweep_c`` is a
    raw ctypes function for the native tier (the evaluator precomputes
    its pointer arguments).  Either may be ``None``.
    """

    def __init__(self, name, sweep_py=None, packed_py=None, lib=None):
        self.name = name
        self.sweep_py = sweep_py
        self.packed_py = packed_py
        self.lib = lib
        self.sweep_c = None
        self.packed_c = None
        if lib is not None:
            self.sweep_c = lib.masked_sweep
            self.sweep_c.restype = ctypes.c_int64
            # 27 trailing pointers: assign + 11 program arrays + 7 state
            # columns + 7 trail buffers + evals_out.
            self.sweep_c.argtypes = (
                [ctypes.c_void_p, ctypes.c_int64, ctypes.c_void_p,
                 ctypes.c_int64]
                + [ctypes.c_void_p] * 27
            )
            self.packed_c = lib.packed_eval
            self.packed_c.restype = None
            self.packed_c.argtypes = [
                ctypes.c_int64, ctypes.c_void_p, ctypes.c_void_p,
                ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
                ctypes.c_int64, ctypes.c_uint64,
            ]

    def run_packed(self, ops, out, arg_off, arg_idx, matrix, tail) -> None:
        """Dispatch one packed segment through this tier."""
        if self.packed_c is not None:
            self.packed_c(
                len(ops),
                ops.ctypes.data,
                out.ctypes.data,
                arg_off.ctypes.data,
                arg_idx.ctypes.data,
                matrix.ctypes.data,
                matrix.shape[1],
                int(tail),
            )
        else:
            self.packed_py(ops, out, arg_off, arg_idx, matrix, np.uint64(tail))


def _make_numba_backend() -> _Backend:
    import numba

    sweep = numba.njit(cache=False)(_masked_sweep)
    packed = numba.njit(cache=False)(_packed_segments)
    return _Backend("numba", sweep_py=sweep, packed_py=packed)


def _make_native_backend() -> _Backend:
    return _Backend("native", lib=_build_native_library())


def _make_interpreted_backend() -> _Backend:
    return _Backend(
        "interpreted", sweep_py=_masked_sweep, packed_py=_packed_segments
    )


_BACKEND_CACHE: Dict[str, Optional[_Backend]] = {}


def _validate_backend(backend: _Backend) -> bool:
    """Drive a canned walk against the Python evaluator; True on parity."""
    # Deferred: building networks pulls in packages that import this one.
    from ..events.expressions import atom, conj, disj, guard, negate, var
    from ..network.build import build_targets

    try:
        events = {
            "b": disj([conj([var(0), var(1)]), negate(var(2))]),
            "n": atom(
                "<=",
                guard(var(0), 1.0) + guard(var(1), 2.0),
                guard(disj([var(1), var(2)]), 2.5),
            ),
        }
        network = build_targets(events)
        oracle = MaskedEvaluator(network)
        candidate = KernelMaskedEvaluator(network, backend)

        def _norm(state):
            if isinstance(state, NumState):
                if not state.may_def:
                    return ("num", None, None, bool(state.may_u), False)
                return (
                    "num",
                    float(state.lo),
                    float(state.hi),
                    bool(state.may_u),
                    True,
                )
            return ("bool", int(state))

        nodes = range(len(network.nodes))
        baseline = [_norm(candidate._state_of(n)) for n in nodes]
        walk = [
            (0, True), (1, False), (None, None), (2, True), (1, True),
        ]
        for variable, value in walk:
            if variable is None:
                oracle.pop()
                candidate.pop()
            else:
                oracle.push(variable, value)
                candidate.push(variable, value)
            for node_id in range(len(network.nodes)):
                left = oracle.node_state(node_id)
                right = candidate.node_state(node_id)
                if isinstance(left, NumState) != isinstance(right, NumState):
                    return False
                if isinstance(left, NumState):
                    same = (
                        bool(left.may_def) == bool(right.may_def)
                        and bool(left.may_u) == bool(right.may_u)
                        and (
                            not left.may_def
                            or (left.lo == right.lo and left.hi == right.hi)
                        )
                    )
                else:
                    same = int(left) == int(right)
                if not same:
                    return False
        candidate.rewind_to(0)
        if [_norm(candidate._state_of(n)) for n in nodes] != baseline:
            return False
        # Packed twin: NOT/AND/OR over three slots vs plain numpy.
        ops = np.asarray([2, 0, 1], dtype=np.int64)
        out = np.asarray([2, 3, 4], dtype=np.int64)
        arg_off = np.asarray([0, 1, 3, 5], dtype=np.int64)
        arg_idx = np.asarray([0, 0, 1, 2, 3], dtype=np.int64)
        rng = np.random.default_rng(0)
        base = rng.integers(0, 1 << 63, size=(5, 3), dtype=np.int64).astype(
            np.uint64
        )
        tail = np.uint64((1 << 40) - 1)
        base[:, -1] &= tail
        expected = base.copy()
        expected[2] = ~expected[0]
        expected[2, -1] &= tail
        expected[3] = expected[0] & expected[1]
        expected[4] = expected[2] | expected[3]
        backend.run_packed(ops, out, arg_off, arg_idx, base, tail)
        return bool(np.array_equal(base, expected))
    except KernelUnsupportedError:
        return False
    except Exception:
        return False


def get_backend(name: str = "auto") -> Optional[_Backend]:
    """Resolve a kernel tier; ``None`` means: use the Python evaluator.

    Backends are built once per process and self-validated against the
    Python evaluator before first use; an unavailable or non-validating
    tier falls back down the ladder (numba → native → python), with the
    reason recorded in :data:`BACKEND_ERRORS`.
    """
    if name == "python":
        return None
    if name == "auto":
        return get_backend("numba") or get_backend("native")
    if name not in ("numba", "native", "interpreted"):
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    if name in _BACKEND_CACHE:
        return _BACKEND_CACHE[name]
    backend: Optional[_Backend] = None
    try:
        if name == "numba":
            backend = _make_numba_backend()
        elif name == "native":
            backend = _make_native_backend()
        else:
            backend = _make_interpreted_backend()
    except Exception as exc:  # unavailable tier: record and fall back
        BACKEND_ERRORS[name] = f"{type(exc).__name__}: {exc}"
        backend = None
    if backend is not None and not _validate_backend(backend):
        BACKEND_ERRORS[name] = "failed self-validation against the oracle"
        backend = None
    _BACKEND_CACHE[name] = backend
    if backend is None and name == "numba":
        return get_backend("native")
    return backend


def available_kernels() -> Tuple[str, ...]:
    """Kernel names that resolve to a working tier in this process."""
    names: List[str] = ["auto", "python", "interpreted"]
    for name in ("numba", "native"):
        if get_backend(name) is not None and name not in BACKEND_ERRORS:
            names.append(name)
    return tuple(sorted(names))


# ----------------------------------------------------------------------
# Kernel-program arrays (cached per MaskedProgram)
# ----------------------------------------------------------------------


def _kernel_program(program: MaskedProgram) -> Dict[str, np.ndarray]:
    cached = getattr(program, "_kernel_cache", None)
    if cached is not None:
        return cached
    par_off, par_idx = program.parents_csr()
    guard_val = np.zeros(len(program), dtype=np.float64)
    for vid, value in program.guard_values.items():
        guard_val[vid] = float(value)
    cached = {
        "kinds": np.ascontiguousarray(program.kinds, dtype=np.int64),
        "var_index": np.ascontiguousarray(program.var_index, dtype=np.int64),
        "atom_op": np.ascontiguousarray(program.atom_op, dtype=np.int64),
        "pow_exp": np.ascontiguousarray(program.pow_exponent, dtype=np.int64),
        "metric": np.ascontiguousarray(program.dist_metric, dtype=np.int64),
        "child_off": np.ascontiguousarray(program.child_offsets, dtype=np.int64),
        "child_idx": np.ascontiguousarray(program.child_indices, dtype=np.int64),
        "par_off": np.ascontiguousarray(par_off, dtype=np.int64),
        "par_idx": np.ascontiguousarray(par_idx, dtype=np.int64),
        "is_bool": np.ascontiguousarray(program.is_bool, dtype=np.uint8),
        "guard_val": guard_val,
    }
    program._kernel_cache = cached
    return cached


def _check_supported(program: MaskedProgram) -> None:
    if bool(program.is_vec.any()):
        raise KernelUnsupportedError(
            "vector-valued c-values need the exact-object path"
        )
    pow_vertices = program.kinds == _K_POW
    if bool(np.any(program.pow_exponent[pow_vertices] < 0)):
        raise KernelUnsupportedError(
            "negative POW exponents need the exact-object path"
        )


# ----------------------------------------------------------------------
# The kernel-backed evaluator
# ----------------------------------------------------------------------


class _KFrame:
    """One trail frame as column slices (restored vectorized on pop).

    A cone sweep trails each vertex at most once (the cone visits every
    vertex at most once per push), so the restore is order-independent
    and can be one fancy-indexed write per column.  Iterating yields
    plain-Python trail tuples in emission order — the representation
    :meth:`MaskedEvaluator.export_patch` walks, keeping kernel frames
    wire-compatible with Python ones.
    """

    __slots__ = ("tag", "vid", "b", "lo", "hi", "mu", "md")

    def __init__(self, tag, vid, b, lo, hi, mu, md):
        self.tag = tag
        self.vid = vid
        self.b = b
        self.lo = lo
        self.hi = hi
        self.mu = mu
        self.md = md

    def __len__(self) -> int:
        return len(self.vid)

    def __iter__(self):
        for i in range(len(self.vid)):
            if self.tag[i] == _TAG_BOOL:
                yield (_TAG_BOOL, int(self.vid[i]), int(self.b[i]))
            else:
                yield (
                    _TAG_NUM,
                    int(self.vid[i]),
                    float(self.lo[i]),
                    float(self.hi[i]),
                    bool(self.mu[i]),
                    bool(self.md[i]),
                )

    def __reversed__(self):
        return reversed(list(self))

    def restore(self, evaluator: "KernelMaskedEvaluator") -> None:
        vids = self.vid
        if len(vids) == 0:
            return
        is_b = self.tag == _TAG_BOOL
        bool_vids = vids[is_b]
        evaluator._b[bool_vids] = self.b[is_b]
        num = ~is_b
        num_vids = vids[num]
        evaluator._lo[num_vids] = self.lo[num]
        evaluator._hi[num_vids] = self.hi[num]
        evaluator._mu[num_vids] = self.mu[num]
        evaluator._md[num_vids] = self.md[num]
        evaluator._resolved[vids] = 0


class KernelMaskedEvaluator(MaskedEvaluator):
    """:class:`MaskedEvaluator` with compiled cone sweeps.

    The observable protocol — ``push``/``pop``/``rewind_to``, states,
    trails, ``export_patch``/``apply_patch`` wire format, ``evals``
    accounting — is identical to the Python evaluator; only the sweep
    executes in the backend.  Columns are promoted from Python lists to
    shared NumPy buffers the kernel mutates in place; every inherited
    query method keeps working because the arrays support the same
    per-element indexing.
    """

    def __init__(self, network: EventNetwork, backend: _Backend) -> None:
        program = masked_program(network)
        _check_supported(program)
        super().__init__(network)
        self._backend = backend
        self.kernel = backend.name
        size = len(program)
        # Promote the columns: same attribute names, array storage.
        self._b = np.asarray(self._b, dtype=np.int8)
        self._lo = np.asarray(self._lo, dtype=np.float64)
        self._hi = np.asarray(self._hi, dtype=np.float64)
        self._mu = np.asarray(self._mu, dtype=np.uint8)
        self._md = np.asarray(self._md, dtype=np.uint8)
        self._resolved = np.asarray(self._resolved, dtype=np.uint8)
        self._dirty = np.zeros(size, dtype=np.uint8)
        max_var = (
            int(program.var_index.max()) if program.var_index.size else -1
        )
        self._assign = np.full(max(max_var + 1, 1), -1, dtype=np.int8)
        self._karrays = _kernel_program(program)
        self._t_tag = np.zeros(size, dtype=np.uint8)
        self._t_vid = np.zeros(size, dtype=np.int64)
        self._t_b = np.zeros(size, dtype=np.int8)
        self._t_lo = np.zeros(size, dtype=np.float64)
        self._t_hi = np.zeros(size, dtype=np.float64)
        self._t_mu = np.zeros(size, dtype=np.uint8)
        self._t_md = np.zeros(size, dtype=np.uint8)
        self._evals_out = np.zeros(1, dtype=np.int64)
        k = self._karrays
        self._py_args = (
            self._assign,
            k["kinds"], k["var_index"], k["atom_op"], k["pow_exp"],
            k["metric"], k["child_off"], k["child_idx"], k["par_off"],
            k["par_idx"], k["is_bool"], k["guard_val"],
            self._b, self._lo, self._hi, self._mu, self._md,
            self._resolved, self._dirty,
            self._t_tag, self._t_vid, self._t_b, self._t_lo, self._t_hi,
            self._t_mu, self._t_md,
        )
        if backend.sweep_c is not None:
            self._c_args = tuple(arr.ctypes.data for arr in self._py_args) + (
                self._evals_out.ctypes.data,
            )
        else:
            self._c_args = None
        # Per-variable (seeds, cone) arrays — and their raw pointers for
        # the native tier — cached across pushes.
        self._var_cache: Dict[int, tuple] = {}

    # -- sweeping through the backend -----------------------------------

    def _var_arrays(self, var_index: int) -> tuple:
        cached = self._var_cache.get(var_index)
        if cached is None:
            seeds = np.asarray(
                self._prog.var_vertices(var_index), dtype=np.int64
            )
            cone = np.ascontiguousarray(
                self._prog.var_cone(var_index), dtype=np.int64
            )
            cached = (
                seeds, cone, seeds.ctypes.data, len(seeds),
                cone.ctypes.data, len(cone),
            )
            self._var_cache[var_index] = cached
        return cached

    def _sweep_kernel(self, var_index: int) -> _KFrame:
        seeds, cone, seeds_ptr, n_seeds, cone_ptr, n_cone = self._var_arrays(
            var_index
        )
        backend = self._backend
        if backend.sweep_c is not None:
            n = int(
                backend.sweep_c(
                    seeds_ptr, n_seeds, cone_ptr, n_cone, *self._c_args
                )
            )
            self.evals += int(self._evals_out[0])
        else:
            n, evals = backend.sweep_py(seeds, cone, *self._py_args)
            n = int(n)
            self.evals += int(evals)
        return _KFrame(
            self._t_tag[:n].copy(),
            self._t_vid[:n].copy(),
            self._t_b[:n].copy(),
            self._t_lo[:n].copy(),
            self._t_hi[:n].copy(),
            self._t_mu[:n].copy(),
            self._t_md[:n].copy(),
        )

    # -- trail protocol overrides ---------------------------------------

    def push(self, var_index: Optional[int] = None, value: bool = True) -> None:
        self._resolved_version += 1
        if var_index is None:
            self._frames.append([])
            self._frame_vars.append(None)
            return
        self.assignment[var_index] = value
        if 0 <= var_index < self._assign.shape[0]:
            # Variables without VAR vertices never reach the kernel.
            self._assign[var_index] = 1 if value else 0
        self._frame_vars.append(var_index)
        self._frames.append(self._sweep_kernel(var_index))

    def pop(self, var_index: Optional[int] = None) -> None:
        recorded = self._frame_vars.pop()
        if var_index is not None and var_index != recorded:
            self._frame_vars.append(recorded)
            raise ValueError(
                f"pop({var_index}) does not match the frame's "
                f"variable {recorded!r}"
            )
        self._resolved_version += 1
        frame = self._frames.pop()
        if isinstance(frame, _KFrame):
            frame.restore(self)
        else:
            # Frames written by apply_patch use the list representation.
            for entry in reversed(frame):
                tag = entry[0]
                vid = entry[1]
                if tag == _TAG_BOOL:
                    self._b[vid] = entry[2]
                else:
                    self._lo[vid] = entry[2]
                    self._hi[vid] = entry[3]
                    self._mu[vid] = entry[4]
                    self._md[vid] = entry[5]
                self._resolved[vid] = 0
        if recorded is not None:
            del self.assignment[recorded]
            if 0 <= recorded < self._assign.shape[0]:
                self._assign[recorded] = -1

    def apply_patch(self, frames) -> None:
        super().apply_patch(frames)
        for variable, value, _entries in frames:
            if variable is not None and 0 <= variable < self._assign.shape[0]:
                self._assign[variable] = 1 if value else 0

    # ``export_patch`` is inherited: the base walk normalises everything
    # through ``_plain_values``, so NumPy columns never leak into the wire
    # format.

    # -- compiler interface ---------------------------------------------

    def _state_of(self, node_id: int):
        vid = self._final[node_id]
        if self._is_bool[vid]:
            return int(self._b[vid])
        if not self._md[vid]:
            return NumState.undefined()
        return NumState(
            float(self._lo[vid]),
            float(self._hi[vid]),
            bool(self._mu[vid]),
            True,
        )


_warned_unknown_kernel = False


def default_kernel() -> str:
    """The process-wide default tier (``REPRO_KERNEL`` or ``auto``).

    An unrecognised ``REPRO_KERNEL`` value falls back to ``auto`` but
    warns once per process — a typo like ``REPRO_KERNEL=numa`` should
    not silently benchmark the wrong tier.
    """
    global _warned_unknown_kernel
    name = os.environ.get("REPRO_KERNEL", "auto")
    if name in KERNEL_NAMES:
        return name
    if not _warned_unknown_kernel:
        _warned_unknown_kernel = True
        warnings.warn(
            f"REPRO_KERNEL={name!r} is not a known kernel tier "
            f"(expected one of {', '.join(KERNEL_NAMES)}); "
            "falling back to 'auto'",
            RuntimeWarning,
            stacklevel=2,
        )
    return "auto"


def kernel_status() -> Dict[str, object]:
    """A report of every kernel tier's availability in this process.

    Returns a dict with:

    * ``tiers`` — ``{name: {"live": bool, "error": str | None}}`` for
      each concrete tier (``numba``/``native``/``interpreted``/
      ``python``), probing each backend (which self-validates against
      the Python oracle on first use);
    * ``default`` — what :func:`default_kernel` returns;
    * ``auto`` — the concrete tier ``auto`` resolves to right now;
    * ``env`` / ``env_valid`` — the raw ``REPRO_KERNEL`` value and
      whether it names a known tier.
    """
    tiers: Dict[str, Dict[str, object]] = {}
    for name in ("numba", "native", "interpreted"):
        backend = get_backend(name)
        live = backend is not None and name not in BACKEND_ERRORS
        tiers[name] = {"live": live, "error": BACKEND_ERRORS.get(name)}
    tiers["python"] = {"live": True, "error": None}
    if get_backend("numba") is not None and "numba" not in BACKEND_ERRORS:
        auto_resolves_to = "numba"
    elif get_backend("native") is not None and "native" not in BACKEND_ERRORS:
        auto_resolves_to = "native"
    else:
        auto_resolves_to = "python"
    env = os.environ.get("REPRO_KERNEL")
    return {
        "tiers": tiers,
        "default": default_kernel(),
        "auto": auto_resolves_to,
        "env": env,
        "env_valid": env is None or env in KERNEL_NAMES,
    }


def make_masked_evaluator(
    network: EventNetwork, kernel: Optional[str] = None
) -> MaskedEvaluator:
    """A masked evaluator driven by the requested kernel tier.

    ``kernel=None`` uses :func:`default_kernel`; unavailable tiers and
    unsupported networks fall back to the Python evaluator, so this
    always succeeds whenever :class:`MaskedEvaluator` itself would.
    """
    name = kernel if kernel is not None else default_kernel()
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    if name == "python":
        return MaskedEvaluator(network)
    backend = get_backend(name)
    if backend is None:
        return MaskedEvaluator(network)
    try:
        return KernelMaskedEvaluator(network, backend)
    except KernelUnsupportedError:
        return MaskedEvaluator(network)
