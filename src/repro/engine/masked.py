"""Masked flat-IR evaluation: columnar three-valued partial evaluation.

The Shannon-expansion compiler (Algorithms 1-2) spends its life asking
one question: *given the current partial assignment, what is the
three-valued state of every target?*  The scalar evaluators
(:class:`repro.compile.partial.PartialEvaluator` and its folded twin)
answer it by recursive Python traversal with per-step dict memos — one
interpreter dispatch per node per DFS step.

This module answers it with columns over the flat IR instead:

* Boolean nodes live in one ``int8`` column of three-valued states
  (``B_FALSE`` / ``B_TRUE`` / ``B_UNKNOWN``);
* numeric nodes live in ``float64`` ``lo``/``hi`` interval columns plus
  ``may_u``/``may_def`` bit columns (vector-valued c-values keep exact
  :class:`~repro.compile.partial.NumState` objects on a side map);
* a ``resolved`` bit column marks states that can no longer change
  under any extension of the assignment — the paper's mask ``M``.

Evaluation is *incremental*: the IR precomputes, per random variable,
the downstream **cone** — the topologically-ordered set of nodes whose
state the variable can influence (:meth:`FlatNetwork.var_cone`).  A
``push(var, value)`` walks only that suffix of the topological order,
and within it recomputes only the vertices whose inputs actually
changed (change-driven dirty propagation); a ``pop()`` restores the
trailed column entries.  Resolved nodes are never recomputed, so work
per DFS step shrinks as the mask tightens — exactly the access pattern
Algorithm 2 describes, minus the per-step dicts.

Folded networks are handled by *unrolling the mask, not the network*:
each loop-dependent node owns one column row per iteration (the matrix
``M[t][v]`` of Section 4.2), loop-input vertices copy from their slot's
init/next vertex of the neighbouring row, and the loop-independent
prefix is shared across rows.  The unrolled program is cached on the
network, like the flat IR itself.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compile.partial import (
    B_FALSE,
    B_TRUE,
    B_UNKNOWN,
    NumState,
    State,
    atom_state,
    num_add,
    num_inv,
    num_mul,
    num_pow,
)
from ..network.folded import FoldedNetwork
from ..network.nodes import EventNetwork, Kind
from .ir import (
    ATOM_OPS,
    BOOL_KIND_CODES,
    FlatNetwork,
    FoldedFlatIR,
    UnsupportedNetworkError,
    flatten,
    flatten_folded,
)

_K_TRUE = int(Kind.TRUE)
_K_FALSE = int(Kind.FALSE)
_K_VAR = int(Kind.VAR)
_K_NOT = int(Kind.NOT)
_K_AND = int(Kind.AND)
_K_OR = int(Kind.OR)
_K_ATOM = int(Kind.ATOM)
_K_GUARD = int(Kind.GUARD)
_K_COND = int(Kind.COND)
_K_SUM = int(Kind.SUM)
_K_PROD = int(Kind.PROD)
_K_INV = int(Kind.INV)
_K_POW = int(Kind.POW)
_K_DIST = int(Kind.DIST)
_K_LOOP_IN = int(Kind.LOOP_IN)

_BOOL_KIND_CODES = BOOL_KIND_CODES

# Trail entry tags: which columns an undo record restores.
_TAG_BOOL = 0
_TAG_NUM = 1
_TAG_VEC = 2

_NAN = math.nan
_INF = math.inf
# The certainly-undefined scalar state as a column tuple (lo, hi, mu, md).
_UNDEFINED = (_NAN, _NAN, True, False)


def _plain_values(tag: int, values: tuple) -> tuple:
    """A trail payload as plain Python scalars (the patch wire format).

    Kernel evaluators store columns as NumPy arrays, so trail entries can
    carry NumPy scalars; everything :meth:`MaskedEvaluator.export_patch`
    emits is normalised through here so patches pickle identically across
    tiers (VEC payloads are :class:`NumState` objects by design and pass
    through unchanged).
    """
    if tag == _TAG_BOOL:
        return (int(values[0]),)
    if tag == _TAG_NUM:
        return (
            float(values[0]),
            float(values[1]),
            bool(values[2]),
            bool(values[3]),
        )
    return values


def patch_wire_size(frames: Sequence[tuple]) -> int:
    """Byte size of a column patch as framed on the wire (pickled).

    The distributed transports ship patches pickled — inside a
    ``multiprocessing`` queue message or a
    :class:`repro.compile.transport.FramedStream` frame — so the
    pickled size is the honest per-patch wire cost, reported by
    ``benchmarks/bench_cluster.py``.
    """
    return len(pickle.dumps(tuple(frames), protocol=pickle.HIGHEST_PROTOCOL))


def patch_is_plain(frames: Sequence[tuple]) -> bool:
    """True when every patch payload is plain Python scalars.

    :meth:`MaskedEvaluator.export_patch` must never leak NumPy scalars
    into a patch (they pickle differently across kernel tiers and
    NumPy versions — the wire format contract); this validator backs
    the property tests that pin that invariant down at runtime, next
    to the static ``wire-format`` lint.
    """
    for variable, value, entries in frames:
        if variable is not None and type(variable) is not int:
            return False
        if value is not None and type(value) is not bool:
            return False
        for entry in entries:
            tag, vid = entry[0], entry[1]
            if type(tag) is not int or type(vid) is not int:
                return False
            payload = entry[2:]
            if tag == _TAG_BOOL:
                if len(payload) != 1 or type(payload[0]) is not int:
                    return False
            elif tag == _TAG_NUM:
                if len(payload) != 4:
                    return False
                if type(payload[0]) is not float:
                    return False
                if type(payload[1]) is not float:
                    return False
                if type(payload[2]) is not bool:
                    return False
                if type(payload[3]) is not bool:
                    return False
    return True


@dataclass
class MaskedProgram:
    """A network unrolled into the vertex space of the masked columns.

    For flat networks this is the identity view of the
    :class:`~repro.engine.ir.FlatNetwork` arrays (one vertex per node).
    For folded networks, loop-independent nodes keep one vertex while
    loop-dependent nodes get one vertex per iteration; loop-input
    vertices carry a single operand — the init/next vertex they copy
    from — so one topological sweep of the vertex space evaluates the
    whole ``M[t][v]`` mask matrix.
    """

    kinds: np.ndarray  # (M,) int16 — Kind codes (LOOP_IN = copy)
    child_offsets: np.ndarray  # (M + 1,) int64
    child_indices: np.ndarray  # (E,) int64 — operand vertex ids
    var_index: np.ndarray  # (M,) int64 — pool index for VAR vertices
    atom_op: np.ndarray  # (M,) int8
    pow_exponent: np.ndarray  # (M,) int64
    dist_metric: np.ndarray  # (M,) int8
    guard_values: Dict[int, object]  # vertex -> constant
    is_bool: np.ndarray  # (M,) bool — Boolean-valued vertex
    is_vec: np.ndarray  # (M,) bool — vector-valued c-value vertex
    final_vertex: np.ndarray  # (N,) int64 — node's vertex at the last iteration
    cone_source: object  # FlatNetwork or FoldedFlatIR (owns node-id cones)
    _cones: Dict[int, np.ndarray] = field(default_factory=dict)
    _final_cones: Dict[int, np.ndarray] = field(default_factory=dict)
    # Folded only: per original node, the vertex ids of its rows.
    _node_rows: "List[np.ndarray] | None" = None

    # Hot-loop views (plain Python containers: per-element indexing of
    # NumPy arrays boxes a scalar per read, which dominates the sweep).
    _py_children: "List[Tuple[int, ...]] | None" = None
    _py_parents: "List[Tuple[int, ...]] | None" = None
    _parents_csr: "Tuple[np.ndarray, np.ndarray] | None" = None
    _py_kinds: "List[int] | None" = None
    _var_vertices: Dict[int, List[int]] = field(default_factory=dict)
    _py_cones: Dict[int, List[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.kinds)

    def children(self, vertex: int) -> np.ndarray:
        return self.child_indices[
            self.child_offsets[vertex] : self.child_offsets[vertex + 1]
        ]

    def py_children(self) -> List[Tuple[int, ...]]:
        if self._py_children is None:
            offsets = self.child_offsets.tolist()
            indices = self.child_indices.tolist()
            self._py_children = [
                tuple(indices[offsets[v] : offsets[v + 1]])
                for v in range(len(self.kinds))
            ]
        return self._py_children

    def py_parents(self) -> List[Tuple[int, ...]]:
        if self._py_parents is None:
            lists: List[List[int]] = [[] for _ in range(len(self.kinds))]
            for vertex, children in enumerate(self.py_children()):
                for child in children:
                    lists[child].append(vertex)
            self._py_parents = [tuple(parents) for parents in lists]
        return self._py_parents

    def parents_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR parent adjacency over the vertex space (cached).

        The dense twin of :meth:`py_parents`, consumed by the kernel
        tier (:mod:`repro.engine.kernels`): parents of vertex ``v`` are
        ``indices[offsets[v]:offsets[v + 1]]``.
        """
        if self._parents_csr is None:
            count = len(self.kinds)
            degrees = np.bincount(self.child_indices, minlength=count)
            offsets = np.zeros(count + 1, dtype=np.int64)
            np.cumsum(degrees, out=offsets[1:])
            indices = np.empty(len(self.child_indices), dtype=np.int64)
            cursor = offsets[:-1].copy()
            for vertex, children in enumerate(self.py_children()):
                for child in children:
                    indices[cursor[child]] = vertex
                    cursor[child] += 1
            self._parents_csr = (offsets, indices)
        return self._parents_csr

    def py_kinds(self) -> List[int]:
        if self._py_kinds is None:
            self._py_kinds = [int(k) for k in self.kinds]
        return self._py_kinds

    def var_vertices(self, var_index: int) -> List[int]:
        """VAR vertices carrying ``var_index`` (sweep seeds)."""
        cached = self._var_vertices.get(var_index)
        if cached is None:
            cached = [int(v) for v in np.flatnonzero(self.var_index == var_index)]
            self._var_vertices[var_index] = cached
        return cached

    def var_cone(self, var_index: int) -> np.ndarray:
        """Vertices to re-sweep when ``var_index`` is assigned (topo order)."""
        cached = self._cones.get(var_index)
        if cached is not None:
            return cached
        node_cone = self.cone_source.var_cone(var_index)
        if self._node_rows is None:
            cone = node_cone  # flat: vertices are node ids
        else:
            rows = self._node_rows
            pieces = [rows[node_id] for node_id in node_cone]
            cone = (
                np.sort(np.concatenate(pieces))
                if pieces
                else np.empty(0, dtype=np.int64)
            )
        self._cones[var_index] = cone
        return cone

    def py_var_cone(self, var_index: int) -> List[int]:
        """:meth:`var_cone` as a plain list (the sweep's iteration space)."""
        cached = self._py_cones.get(var_index)
        if cached is None:
            cached = self.var_cone(var_index).tolist()
            self._py_cones[var_index] = cached
        return cached

    def final_cone(self, var_index: int) -> np.ndarray:
        """Final vertices of the *node-level* influence cone of a variable.

        One vertex per original network node in the cone — its row at
        the last iteration when folded — so counting unresolved entries
        over this array matches the node-granular resolution the
        ordering strategies and the scalar oracles reason about
        (:meth:`MaskedEvaluator.count_unresolved_in_cone`).  Cached per
        variable, shared by every evaluator of the same network.
        """
        cached = self._final_cones.get(var_index)
        if cached is None:
            node_cone = self.cone_source.var_cone(var_index)
            cached = self.final_vertex[node_cone]
            self._final_cones[var_index] = cached
        return cached


def _vector_flags(
    kinds: np.ndarray,
    child_lists: List[np.ndarray],
    guard_values: Dict[int, object],
    loop_pairs: Dict[int, Tuple[int, int]],
) -> np.ndarray:
    """Per-node vector-valuedness, by structural fixpoint.

    A node is vector-valued when a vector guard constant can flow into
    it; such nodes are evaluated through exact :class:`NumState` objects
    on the side map instead of the scalar columns.  ``loop_pairs`` maps
    loop-input node ids to their ``(init, next)`` nodes — vecness flows
    through the loop edges, so a fixpoint is needed (a slot's *next*
    node has a higher id than the loop input).
    """
    count = len(kinds)
    vec = np.zeros(count, dtype=bool)
    for node_id, value in guard_values.items():
        if isinstance(value, np.ndarray):
            vec[node_id] = True
    changed = True
    while changed:
        changed = False
        for node_id in range(count):
            if vec[node_id]:
                continue
            kind = int(kinds[node_id])
            if kind in (_K_SUM, _K_PROD, _K_COND, _K_INV, _K_POW):
                if any(vec[int(c)] for c in child_lists[node_id]):
                    vec[node_id] = True
                    changed = True
            elif kind == _K_LOOP_IN and node_id in loop_pairs:
                init_node, next_node = loop_pairs[node_id]
                if vec[init_node] or vec[next_node]:
                    vec[node_id] = True
                    changed = True
    return vec


def _bool_flags(network: EventNetwork, kinds: np.ndarray) -> np.ndarray:
    is_bool = np.isin(kinds, np.asarray(sorted(_BOOL_KIND_CODES), dtype=kinds.dtype))
    for node in network.nodes:
        if node.kind is Kind.LOOP_IN:
            is_bool[node.id] = bool(node.payload[1])
    return is_bool


def _flat_program(network: EventNetwork, flat: FlatNetwork) -> MaskedProgram:
    child_lists = [flat.children(n) for n in range(len(flat))]
    vec = _vector_flags(flat.kinds, child_lists, flat.guard_values, {})
    return MaskedProgram(
        kinds=flat.kinds,
        child_offsets=flat.child_offsets,
        child_indices=flat.child_indices,
        var_index=flat.var_index,
        atom_op=flat.atom_op,
        pow_exponent=flat.pow_exponent,
        dist_metric=flat.dist_metric,
        guard_values=dict(flat.guard_values),
        is_bool=_bool_flags(network, flat.kinds),
        is_vec=vec,
        final_vertex=np.arange(len(flat), dtype=np.int64),
        cone_source=flat,
    )


def _layer_row_order(ir: FoldedFlatIR, layer_ids: np.ndarray) -> List[int]:
    """Topological order of the loop layer for the iteration-0 row.

    Within a row, a node depends on its loop-dependent children — except
    loop inputs, which at iteration 0 depend on their slot's *init* node
    (only an intra-row edge when the init is itself loop-dependent, i.e.
    a cross-slot init chain).  Cycles mean the inits are mutually
    recursive at iteration 0, which no evaluator can order.
    """
    flat, dependent = ir.flat, ir.loop_dependent
    order: List[int] = []
    status: Dict[int, int] = {}  # 0 = visiting, 1 = done

    def intra_row_deps(node_id: int) -> List[int]:
        slot = int(ir.loop_slot[node_id])
        if slot >= 0:
            init_node = int(ir.init_ids[slot])
            return [init_node] if dependent[init_node] else []
        return [int(c) for c in flat.children(node_id) if dependent[c]]

    for root in layer_ids:
        if int(root) in status:
            continue
        stack: List[Tuple[int, int]] = [(int(root), 0)]
        while stack:
            node_id, phase = stack.pop()
            if phase == 0:
                if node_id in status:
                    continue
                status[node_id] = 0
                stack.append((node_id, 1))
                for dep in intra_row_deps(node_id):
                    if status.get(dep) == 0:
                        raise UnsupportedNetworkError(
                            "cyclic slot initialisation in folded network"
                        )
                    if dep not in status:
                        stack.append((dep, 0))
            else:
                status[node_id] = 1
                order.append(node_id)
    return order


def _folded_program(network: FoldedNetwork, ir: FoldedFlatIR) -> MaskedProgram:
    flat = ir.flat
    count = len(flat)
    dependent = ir.loop_dependent
    iterations = ir.iterations
    indep_ids = np.flatnonzero(~dependent)
    layer_ids = np.flatnonzero(dependent)
    row_order = _layer_row_order(ir, layer_ids)
    layer_size = len(row_order)
    indep_count = len(indep_ids)
    total = indep_count + iterations * layer_size

    indep_pos = np.full(count, -1, dtype=np.int64)
    indep_pos[indep_ids] = np.arange(indep_count, dtype=np.int64)
    dep_pos = np.full(count, -1, dtype=np.int64)
    dep_pos[row_order] = np.arange(layer_size, dtype=np.int64)

    def vertex(iteration: int, node_id: int) -> int:
        if not dependent[node_id]:
            return int(indep_pos[node_id])
        return indep_count + iteration * layer_size + int(dep_pos[node_id])

    kinds = np.empty(total, dtype=flat.kinds.dtype)
    var_index = np.full(total, -1, dtype=np.int64)
    atom_op = np.full(total, -1, dtype=np.int8)
    pow_exponent = np.zeros(total, dtype=np.int64)
    dist_metric = np.full(total, -1, dtype=np.int8)
    guard_values: Dict[int, object] = {}
    child_lists: List[List[int]] = []
    offsets = np.zeros(total + 1, dtype=np.int64)
    node_of = np.empty(total, dtype=np.int64)

    def emit(vid: int, node_id: int, children: List[int]) -> None:
        kinds[vid] = flat.kinds[node_id]
        var_index[vid] = flat.var_index[node_id]
        atom_op[vid] = flat.atom_op[node_id]
        pow_exponent[vid] = flat.pow_exponent[node_id]
        dist_metric[vid] = flat.dist_metric[node_id]
        if node_id in flat.guard_values:
            guard_values[vid] = flat.guard_values[node_id]
        node_of[vid] = node_id
        child_lists.append(children)
        offsets[vid + 1] = len(children)

    for node_id in indep_ids:
        emit(
            int(indep_pos[node_id]),
            int(node_id),
            [vertex(0, int(c)) for c in flat.children(int(node_id))],
        )
    for iteration in range(iterations):
        for node_id in row_order:
            vid = vertex(iteration, node_id)
            slot = int(ir.loop_slot[node_id])
            if slot >= 0:
                if iteration == 0:
                    source = vertex(0, int(ir.init_ids[slot]))
                else:
                    source = vertex(iteration - 1, int(ir.next_ids[slot]))
                emit(vid, node_id, [source])
            else:
                emit(
                    vid,
                    node_id,
                    [
                        vertex(iteration, int(c))
                        for c in flat.children(node_id)
                    ],
                )
    np.cumsum(offsets[1:], out=offsets[1:])
    child_indices = np.fromiter(
        (c for children in child_lists for c in children),
        dtype=np.int64,
        count=int(offsets[-1]),
    )

    # Per-node flags, broadcast to vertices via node_of.
    node_children = [flat.children(n) for n in range(count)]
    loop_pairs = {
        int(ir.loop_in_ids[slot]): (
            int(ir.init_ids[slot]),
            int(ir.next_ids[slot]),
        )
        for slot in range(len(ir.loop_in_ids))
    }
    node_vec = _vector_flags(
        flat.kinds, node_children, flat.guard_values, loop_pairs
    )
    node_bool = _bool_flags(network, flat.kinds)

    final_vertex = np.empty(count, dtype=np.int64)
    rows: List[np.ndarray] = []
    for node_id in range(count):
        final_vertex[node_id] = vertex(iterations - 1, node_id)
        if dependent[node_id]:
            base = indep_count + int(dep_pos[node_id])
            rows.append(
                base
                + layer_size * np.arange(iterations, dtype=np.int64)
            )
        else:
            rows.append(np.asarray([int(indep_pos[node_id])], dtype=np.int64))

    return MaskedProgram(
        kinds=kinds,
        child_offsets=offsets,
        child_indices=child_indices,
        var_index=var_index,
        atom_op=atom_op,
        pow_exponent=pow_exponent,
        dist_metric=dist_metric,
        guard_values=guard_values,
        is_bool=node_bool[node_of],
        is_vec=node_vec[node_of],
        final_vertex=final_vertex,
        cone_source=ir,
        _node_rows=rows,
    )


def masked_program(network: EventNetwork) -> MaskedProgram:
    """The network's masked vertex program (cached like the flat IR)."""
    if isinstance(network, FoldedNetwork):
        ir = flatten_folded(network)
        cached = getattr(network, "_masked_program", None)
        if cached is not None and cached[0] is ir:
            return cached[1]
        program = _folded_program(network, ir)
        key = ir
    else:
        flat = flatten(network)
        cached = getattr(network, "_masked_program", None)
        if cached is not None and cached[0] is flat:
            return cached[1]
        program = _flat_program(network, flat)
        key = flat
    try:
        network._masked_program = (key, program)
    except AttributeError:  # pragma: no cover - exotic network subclasses
        pass
    return program


class MaskedEvaluator:
    """Columnar three-valued evaluation with incremental recomputation.

    Drop-in replacement for the scalar partial evaluators behind the
    ``make_evaluator`` seam: the same ``push``/``pop``/``depth``/
    ``assignment``/``evals`` protocol, the same ``target_states`` /
    ``node_state`` queries, the same three-valued semantics (validated
    state-for-state against the oracles by the property suite).  Flat
    and folded networks share one code path — the folded mask matrix is
    unrolled into the vertex space by :func:`masked_program`.

    ``push(var, value)`` walks the variable's precomputed cone in
    topological order, recomputing a vertex only when one of its inputs
    actually changed value (change-driven dirty propagation), and trails
    every accepted write; ``pop()`` restores the trailed column entries.
    The hot columns are kept as plain Python lists — reading a scalar
    out of a NumPy array boxes a fresh object per access, which would
    dominate the sweep; the ``bstate``/``lo``/``hi``/``may_u``/
    ``may_def``/``resolved_mask`` NumPy views are materialised on
    demand.

    **Trail semantics.**  Every ``push`` opens one trail frame and
    records which variable (if any) it assigned; ``pop`` closes the
    newest frame, restores its trailed writes, and retracts the
    recorded assignment.  Frames therefore need no caller bookkeeping:
    :meth:`rewind_to` pops frames down to an arbitrary *base depth*,
    which is how a persistent distributed worker backs out of one job
    prefix to the common ancestor of the next
    (:mod:`repro.compile.distributed`).

    >>> from repro.events.expressions import conj, var
    >>> from repro.network.build import build_targets
    >>> network = build_targets({"t": conj([var(0), var(1)])})
    >>> evaluator = MaskedEvaluator(network)
    >>> evaluator.push(0, True)
    >>> evaluator.push(1, True)
    >>> evaluator.target_states([network.targets["t"]])[network.targets["t"]]
    1
    >>> evaluator.rewind_to(0)
    >>> (evaluator.depth, evaluator.assignment)
    (0, {})

    **Cone invalidation.**  A ``push(var, value)`` can only change
    vertices downstream of ``var``, so the sweep is restricted to the
    variable's precomputed cone and stops early once no dirty vertex
    remains; resolved vertices are never recomputed, and a ``pop``
    un-resolves exactly the vertices its frame trailed.  The
    per-variable cones double as the ordering signal:
    :meth:`count_unresolved_in_cone` intersects a cone with the
    resolved column in one vectorized operation — the hook behind
    :class:`~repro.compile.ordering.ConeInfluenceOrder`.

    >>> evaluator.count_unresolved_in_cone(0)
    2
    >>> evaluator.push(0, False)  # resolves the AND and its target
    >>> evaluator.count_unresolved_in_cone(1)
    1
    >>> evaluator.rewind_to(0)
    """

    #: Which kernel tier drives the cone sweeps.  ``"python"`` here; the
    #: compiled subclasses (:mod:`repro.engine.kernels`) override it with
    #: the backend that actually ran (``"native"``/``"numba"``).
    kernel = "python"

    def __init__(self, network: EventNetwork) -> None:
        self.network = network
        program = masked_program(network)
        self._prog = program
        size = len(program)
        self._b: List[int] = [B_UNKNOWN] * size
        self._lo: List[float] = [_NAN] * size
        self._hi: List[float] = [_NAN] * size
        self._mu: List[bool] = [False] * size
        self._md: List[bool] = [False] * size
        self._resolved: List[bool] = [False] * size
        self._dirty: List[bool] = [False] * size
        self._vec: Dict[int, NumState] = {}
        self.assignment: Dict[int, bool] = {}
        self._frames: List[List[tuple]] = []
        self._frame_vars: List[Optional[int]] = []
        self.evals = 0
        # Resolved-column cache for the vectorized ordering hook: the
        # column only changes inside push/pop, so those bump the version
        # and the NumPy materialisation is shared by every cone query at
        # one branching point.
        self._resolved_version = 0
        self._resolved_cache: Optional[np.ndarray] = None
        self._resolved_cache_version = -1
        self._kinds = program.py_kinds()
        self._children = program.py_children()
        self._parents = program.py_parents()
        self._is_bool: List[bool] = [bool(b) for b in program.is_bool]
        self._is_vec: List[bool] = [bool(v) for v in program.is_vec]
        self._final: List[int] = program.final_vertex.tolist()
        self._var: List[int] = program.var_index.tolist()
        self._atom_op: List[int] = program.atom_op.tolist()
        self._pow: List[int] = program.pow_exponent.tolist()
        self._metric: List[int] = program.dist_metric.tolist()
        self._guard: Dict[int, object] = program.guard_values
        # Baseline sweep under the empty assignment; everything resolved
        # here stays resolved for the whole compilation.
        for vid in range(size):
            self._recompute(vid, None)

    # -- NumPy column views ---------------------------------------------

    @property
    def bstate(self) -> np.ndarray:
        """Three-valued Boolean state column (int8)."""
        return np.asarray(self._b, dtype=np.int8)

    @property
    def lo(self) -> np.ndarray:
        return np.asarray(self._lo, dtype=np.float64)

    @property
    def hi(self) -> np.ndarray:
        return np.asarray(self._hi, dtype=np.float64)

    @property
    def may_u(self) -> np.ndarray:
        return np.asarray(self._mu, dtype=bool)

    @property
    def may_def(self) -> np.ndarray:
        return np.asarray(self._md, dtype=bool)

    @property
    def resolved_mask(self) -> np.ndarray:
        """Which vertices are final for every extension of the assignment."""
        return np.asarray(self._resolved, dtype=bool)

    # -- trail management (same protocol as the scalar evaluators) -----

    def push(self, var_index: Optional[int] = None, value: bool = True) -> None:
        """Open a DFS frame, optionally assigning one more variable.

        Assigning a variable re-sweeps only its downstream cone, and
        within the cone only the vertices whose inputs actually changed;
        every accepted write is trailed so ``pop`` can restore it.  The
        frame records the assigned variable, so ``pop`` needs no
        argument to retract it.
        """
        self._frames.append([])
        self._frame_vars.append(var_index)
        self._resolved_version += 1
        if var_index is not None:
            self.assignment[var_index] = value
            self._sweep_cone(var_index)

    def pop(self, var_index: Optional[int] = None) -> None:
        """Close the current DFS frame, restoring the trailed entries.

        ``var_index`` is optional: the frame remembers which variable
        its ``push`` assigned.  Passing it anyway (the compiler does,
        for readability) asserts the caller's idea of the stack against
        the trail's.
        """
        recorded = self._frame_vars.pop()
        if var_index is not None and var_index != recorded:
            self._frame_vars.append(recorded)
            raise ValueError(
                f"pop({var_index}) does not match the frame's "
                f"variable {recorded!r}"
            )
        self._resolved_version += 1
        for entry in reversed(self._frames.pop()):
            tag = entry[0]
            vid = entry[1]
            if tag == _TAG_BOOL:
                self._b[vid] = entry[2]
            elif tag == _TAG_NUM:
                self._lo[vid] = entry[2]
                self._hi[vid] = entry[3]
                self._mu[vid] = entry[4]
                self._md[vid] = entry[5]
            else:
                if entry[2] is None:
                    self._vec.pop(vid, None)
                else:
                    self._vec[vid] = entry[2]
            self._resolved[vid] = False
        if recorded is not None:
            del self.assignment[recorded]

    @property
    def depth(self) -> int:
        return len(self._frames)

    def rewind_to(self, depth: int) -> None:
        """Pop frames until the trail is ``depth`` frames deep.

        The base-depth rewind of the delta handoff: a persistent
        distributed worker backs out of the previous job's assignment
        prefix down to the common ancestor of the next one instead of
        replaying from the root.  Rewinding to ``0`` restores the
        baseline (empty-assignment) state exactly.
        """
        if depth < 0 or depth > len(self._frames):
            raise ValueError(
                f"cannot rewind to depth {depth} from depth {len(self._frames)}"
            )
        while len(self._frames) > depth:
            self.pop()

    # -- column patches (the cross-process wire format) -----------------

    def export_patch(self, base_depth: int) -> Tuple[tuple, ...]:
        """The frames above ``base_depth`` as a portable column patch.

        A *patch* is the post-state of a trail slice: one record per
        frame — ``(variable, value, entries)`` — where each entry names
        a vertex and the column values the frame's sweep left it with.
        Applied on top of the *same* base state by
        :meth:`apply_patch`, it reproduces the sender's columns exactly,
        write for write, without re-evaluating anything: this is how the
        multi-process distributed coordinator ships assignment-prefix
        state between workers (:mod:`repro.compile.distributed`) instead
        of having every worker re-sweep the cones along the prefix.

        The trail records *old* values (for undo), so the per-frame new
        values are reconstructed by walking the slice newest to oldest:
        the value a frame wrote is whatever the next-newer frame
        trailing the same vertex saw as "old" (the current column value
        when no newer frame touched it).  Everything in a patch is
        plain Python scalars plus :class:`NumState` objects, so it
        pickles across process boundaries.
        """
        if base_depth < 0 or base_depth > len(self._frames):
            raise ValueError(
                f"cannot export from depth {base_depth} "
                f"at depth {len(self._frames)}"
            )
        frames = self._frames[base_depth:]
        variables = self._frame_vars[base_depth:]
        tracking: Dict[Tuple[int, int], tuple] = {}
        newest_first: List[tuple] = []
        for frame, variable in zip(reversed(frames), reversed(variables)):
            entries: List[tuple] = []
            for entry in frame:
                tag, vid = entry[0], entry[1]
                key = (tag, vid)
                new = tracking.get(key)
                if new is None:
                    if tag == _TAG_BOOL:
                        new = (int(self._b[vid]),)
                    elif tag == _TAG_NUM:
                        new = (
                            float(self._lo[vid]),
                            float(self._hi[vid]),
                            bool(self._mu[vid]),
                            bool(self._md[vid]),
                        )
                    else:
                        new = (self._vec.get(vid),)
                entries.append((int(tag), int(vid)) + new)
                tracking[key] = _plain_values(tag, tuple(entry[2:]))
            value = None if variable is None else bool(self.assignment[variable])
            newest_first.append((variable, value, tuple(entries)))
        return tuple(reversed(newest_first))

    def apply_patch(self, frames: Sequence[tuple]) -> None:
        """Re-apply an exported column patch on top of its base state.

        Opens one trail frame per patch record and writes the recorded
        column values directly — no cone sweep, no evaluation counted —
        trailing the overwritten values so ``pop``/``rewind_to`` undo a
        patched frame exactly like a swept one.  The caller must have
        the evaluator in the same state the patch was exported against
        (same program, same base prefix); the distributed coordinator
        guarantees this by construction.
        """
        for variable, value, entries in frames:
            trail: List[tuple] = []
            self._frames.append(trail)
            self._frame_vars.append(variable)
            self._resolved_version += 1
            if variable is not None:
                self.assignment[variable] = value
            for entry in entries:
                tag, vid = entry[0], entry[1]
                if tag == _TAG_BOOL:
                    new = entry[2]
                    trail.append((_TAG_BOOL, vid, self._b[vid]))
                    self._b[vid] = new
                    if new != B_UNKNOWN:
                        self._resolved[vid] = True
                elif tag == _TAG_NUM:
                    new_lo, new_hi, new_mu, new_md = entry[2:6]
                    trail.append(
                        (
                            _TAG_NUM,
                            vid,
                            self._lo[vid],
                            self._hi[vid],
                            self._mu[vid],
                            self._md[vid],
                        )
                    )
                    self._lo[vid] = new_lo
                    self._hi[vid] = new_hi
                    self._mu[vid] = new_mu
                    self._md[vid] = new_md
                    if (not new_md and new_mu) or (
                        new_md and not new_mu and new_lo == new_hi
                    ):
                        self._resolved[vid] = True
                else:
                    state = entry[2]
                    trail.append((_TAG_VEC, vid, self._vec.get(vid)))
                    if state is None:
                        self._vec.pop(vid, None)
                    else:
                        self._vec[vid] = state
                        if state.may_u:
                            resolved = not state.may_def
                        else:
                            resolved = state.lo is state.hi or bool(
                                np.array_equal(state.lo, state.hi)
                            )
                        if resolved:
                            self._resolved[vid] = True

    # -- sweeping -------------------------------------------------------

    def _sweep_cone(self, var_index: int) -> None:
        prog = self._prog
        dirty = self._dirty
        resolved = self._resolved
        parents = self._parents
        frame = self._frames[-1] if self._frames else None
        pending = 0
        for vid in prog.var_vertices(var_index):
            if not dirty[vid]:
                dirty[vid] = True
                pending += 1
        for vid in prog.py_var_cone(var_index):
            if not dirty[vid]:
                continue
            dirty[vid] = False
            pending -= 1
            if not resolved[vid] and self._recompute(vid, frame):
                for parent in parents[vid]:
                    if not dirty[parent]:
                        dirty[parent] = True
                        pending += 1
            if pending == 0:
                break

    def _recompute(self, vid: int, frame: Optional[List[tuple]]) -> bool:
        """Re-evaluate one vertex; returns whether its *value* changed."""
        self.evals += 1
        kind = self._kinds[vid]
        if self._is_bool[vid]:
            new = self._compute_bool(kind, vid)
            old = self._b[vid]
            if new == old:
                if new != B_UNKNOWN and not self._resolved[vid]:
                    # Same value, newly stable: resolve without propagating.
                    if frame is not None:
                        frame.append((_TAG_BOOL, vid, old))
                    self._resolved[vid] = True
                return False
            if frame is not None:
                frame.append((_TAG_BOOL, vid, old))
            self._b[vid] = new
            if new != B_UNKNOWN:
                self._resolved[vid] = True
            return True
        if self._is_vec[vid]:
            return self._write_num(vid, self._compute_num_obj(kind, vid), frame)
        result = self._compute_num_scalar(kind, vid)
        if result is None:
            # Scalar value computed from vector operands (DIST): take the
            # exact object path.
            return self._write_num(vid, self._compute_num_obj(kind, vid), frame)
        return self._write_num_scalar(vid, result, frame)

    # -- Boolean kernel -------------------------------------------------

    def _compute_bool(self, kind: int, vid: int) -> int:
        bstate = self._b
        children = self._children[vid]
        if kind == _K_VAR:
            assigned = self.assignment.get(self._var[vid])
            if assigned is None:
                return B_UNKNOWN
            return B_TRUE if assigned else B_FALSE
        if kind == _K_AND:
            saw_unknown = False
            for child in children:
                value = bstate[child]
                if value == B_FALSE:
                    return B_FALSE
                if value == B_UNKNOWN:
                    saw_unknown = True
            return B_UNKNOWN if saw_unknown else B_TRUE
        if kind == _K_OR:
            saw_unknown = False
            for child in children:
                value = bstate[child]
                if value == B_TRUE:
                    return B_TRUE
                if value == B_UNKNOWN:
                    saw_unknown = True
            return B_UNKNOWN if saw_unknown else B_FALSE
        if kind == _K_NOT:
            value = bstate[children[0]]
            if value == B_UNKNOWN:
                return B_UNKNOWN
            return B_TRUE if value == B_FALSE else B_FALSE
        if kind == _K_ATOM:
            return self._compute_atom(vid, children)
        if kind == _K_TRUE:
            return B_TRUE
        if kind == _K_FALSE:
            return B_FALSE
        if kind == _K_LOOP_IN:
            return bstate[children[0]]
        raise TypeError(f"cannot mask-evaluate node kind {Kind(kind)!r}")

    def _compute_atom(self, vid: int, children: Tuple[int, ...]) -> int:
        left, right = children
        if self._is_vec[left] or self._is_vec[right]:
            return atom_state(
                _OP_NAMES[self._atom_op[vid]],
                self._read_num(left),
                self._read_num(right),
            )
        if not self._md[left] or not self._md[right]:
            return B_TRUE
        op = self._atom_op[vid]
        llo, lhi = self._lo[left], self._hi[left]
        rlo, rhi = self._lo[right], self._hi[right]
        if op == 0:  # <=
            always, never = lhi <= rlo, rhi < llo
        elif op == 1:  # <
            always, never = lhi < rlo, rhi <= llo
        elif op == 2:  # >=
            always, never = rhi <= llo, lhi < rlo
        elif op == 3:  # >
            always, never = rhi < llo, lhi <= rlo
        else:  # ==
            always = (
                not self._mu[left]
                and not self._mu[right]
                and llo == lhi
                and rlo == rhi
                and llo == rlo
            )
            never = lhi < rlo or rhi < llo
        if always:
            return B_TRUE
        if never and not self._mu[left] and not self._mu[right]:
            return B_FALSE
        return B_UNKNOWN

    # -- numeric kernel -------------------------------------------------

    def _read_num(self, vid: int) -> NumState:
        if self._is_vec[vid]:
            return self._vec[vid]
        if not self._md[vid]:
            return NumState.undefined()
        return NumState(self._lo[vid], self._hi[vid], self._mu[vid], True)

    def _compute_num_obj(self, kind: int, vid: int) -> NumState:
        """Exact-object evaluation, for vector-valued vertices."""
        children = self._children[vid]
        if kind == _K_GUARD:
            event = self._b[children[0]]
            value = self._guard[vid]
            if event == B_TRUE:
                return NumState.point(value)
            if event == B_FALSE:
                return NumState.undefined()
            return NumState(value, value, True, True)
        if kind == _K_COND:
            event = self._b[children[0]]
            if event == B_FALSE:
                return NumState.undefined()
            value = self._read_num(children[1])
            if event == B_TRUE:
                return value
            if not value.may_def:
                return NumState.undefined()
            return NumState(value.lo, value.hi, True, True)
        if kind == _K_SUM:
            total = NumState.undefined()
            for child in children:
                total = num_add(total, self._read_num(child))
            return total
        if kind == _K_PROD:
            product = NumState.point(1.0)
            for child in children:
                product = num_mul(product, self._read_num(child))
            return product
        if kind == _K_INV:
            return num_inv(self._read_num(children[0]))
        if kind == _K_POW:
            return num_pow(self._read_num(children[0]), self._pow[vid])
        if kind == _K_DIST:
            return _dist_vec(
                self._read_num(children[0]),
                self._read_num(children[1]),
                self._metric[vid],
            )
        if kind == _K_LOOP_IN:
            return self._read_num(children[0])
        raise TypeError(f"cannot mask-evaluate node kind {Kind(kind)!r}")

    def _compute_num_scalar(
        self, kind: int, vid: int
    ) -> "Optional[Tuple[float, float, bool, bool]]":
        """Inline interval arithmetic on the scalar columns.

        Returns ``(lo, hi, may_u, may_def)`` — the undefined state is
        ``(nan, nan, True, False)`` — or ``None`` when the vertex needs
        the exact object path (vector operands feeding a scalar DIST).
        Mirrors the :mod:`repro.compile.partial` operators case by case.
        """
        children = self._children[vid]
        b, lo, hi, mu, md = self._b, self._lo, self._hi, self._mu, self._md
        if kind == _K_GUARD:
            event = b[children[0]]
            value = self._guard[vid]
            if event == B_TRUE:
                return (value, value, False, True)
            if event == B_FALSE:
                return _UNDEFINED
            return (value, value, True, True)
        if kind == _K_COND:
            event = b[children[0]]
            if event == B_FALSE:
                return _UNDEFINED
            child = children[1]
            if not md[child]:
                return _UNDEFINED
            if event == B_TRUE:
                return (lo[child], hi[child], mu[child], True)
            return (lo[child], hi[child], True, True)
        if kind == _K_SUM:
            # ``u`` is the identity: the accumulator starts undefined.
            # Faithful fold of :func:`repro.compile.partial.num_add`.
            a_lo = a_hi = _NAN
            a_mu, a_md = True, False
            for child in children:
                c_md = md[child]
                c_mu = mu[child]
                c_lo, c_hi = lo[child], hi[child]
                n_lo = n_hi = None
                n_md = False
                if a_md and c_md:
                    n_lo, n_hi = a_lo + c_lo, a_hi + c_hi
                    n_md = True
                if a_md and c_mu:
                    n_lo = a_lo if n_lo is None else min(n_lo, a_lo)
                    n_hi = a_hi if n_hi is None else max(n_hi, a_hi)
                    n_md = True
                if c_md and a_mu:
                    n_lo = c_lo if n_lo is None else min(n_lo, c_lo)
                    n_hi = c_hi if n_hi is None else max(n_hi, c_hi)
                    n_md = True
                a_mu = a_mu and c_mu
                if n_md:
                    a_lo, a_hi, a_md = n_lo, n_hi, True
                else:
                    a_lo, a_hi, a_md = _NAN, _NAN, False
                    a_mu = True  # fully undefined again
            if not a_md:
                return _UNDEFINED
            return (a_lo, a_hi, a_mu, True)
        if kind == _K_PROD:
            a_lo = a_hi = 1.0
            a_mu, a_md = False, True
            for child in children:
                a_mu = a_mu or mu[child]
                if not md[child]:
                    return _UNDEFINED  # u annihilates for good
                c_lo, c_hi = lo[child], hi[child]
                p1, p2, p3, p4 = (
                    a_lo * c_lo,
                    a_lo * c_hi,
                    a_hi * c_lo,
                    a_hi * c_hi,
                )
                a_lo = min(p1, p2, p3, p4)
                a_hi = max(p1, p2, p3, p4)
            return (a_lo, a_hi, a_mu, True)
        if kind == _K_INV:
            child = children[0]
            if not md[child]:
                return _UNDEFINED
            c_lo, c_hi = lo[child], hi[child]
            if c_lo > 0 or c_hi < 0:
                return (1.0 / c_hi, 1.0 / c_lo, mu[child], True)
            if c_lo == 0 and c_hi == 0:
                return _UNDEFINED
            if c_lo == 0:
                return (1.0 / c_hi, _INF, True, True)
            if c_hi == 0:
                return (-_INF, 1.0 / c_lo, True, True)
            return (-_INF, _INF, True, True)
        if kind == _K_POW:
            exponent = self._pow[vid]
            if exponent < 0:
                return None  # rare: exact object path handles the inversion
            child = children[0]
            if not md[child]:
                return _UNDEFINED
            c_lo, c_hi = lo[child], hi[child]
            if exponent % 2 == 1 or c_lo >= 0:
                return (c_lo**exponent, c_hi**exponent, mu[child], True)
            abs_lo, abs_hi = abs(c_lo), abs(c_hi)
            spans_zero = c_lo <= 0 <= c_hi
            n_lo = 0.0 if spans_zero else min(abs_lo, abs_hi) ** exponent
            return (n_lo, max(abs_lo, abs_hi) ** exponent, mu[child], True)
        if kind == _K_DIST:
            left, right = children
            if self._is_vec[left] or self._is_vec[right]:
                return None
            n_mu = mu[left] or mu[right]
            if not (md[left] and md[right]):
                return _UNDEFINED
            diff_lo = lo[left] - hi[right]
            diff_hi = hi[left] - lo[right]
            spans_zero = diff_lo <= 0 <= diff_hi
            abs_lo = 0.0 if spans_zero else min(abs(diff_lo), abs(diff_hi))
            abs_hi = max(abs(diff_lo), abs(diff_hi))
            if self._metric[vid] == 1:  # sqeuclidean
                return (abs_lo * abs_lo, abs_hi * abs_hi, n_mu, True)
            # euclidean and manhattan coincide on scalars
            return (abs_lo, abs_hi, n_mu, True)
        if kind == _K_LOOP_IN:
            child = children[0]
            return (lo[child], hi[child], mu[child], md[child])
        raise TypeError(f"cannot mask-evaluate node kind {Kind(kind)!r}")

    def _write_num_scalar(
        self,
        vid: int,
        state: Tuple[float, float, bool, bool],
        frame: Optional[List[tuple]],
    ) -> bool:
        new_lo, new_hi, new_mu, new_md = state
        old_md = self._md[vid]
        old_mu = self._mu[vid]
        old_lo = self._lo[vid]
        old_hi = self._hi[vid]
        resolved = (not new_md and new_mu) or (
            new_md and not new_mu and new_lo == new_hi
        )
        unchanged = (
            old_md == new_md
            and old_mu == new_mu
            and (not new_md or (old_lo == new_lo and old_hi == new_hi))
        )
        if unchanged:
            if resolved and not self._resolved[vid]:
                # Same value, newly stable: resolve without propagating.
                if frame is not None:
                    frame.append((_TAG_NUM, vid, old_lo, old_hi, old_mu, old_md))
                self._resolved[vid] = True
            return False
        if frame is not None:
            frame.append((_TAG_NUM, vid, old_lo, old_hi, old_mu, old_md))
        self._lo[vid] = new_lo
        self._hi[vid] = new_hi
        self._mu[vid] = new_mu
        self._md[vid] = new_md
        if resolved:
            self._resolved[vid] = True
        return True

    def _write_num(
        self, vid: int, state: NumState, frame: Optional[List[tuple]]
    ) -> bool:
        if self._is_vec[vid]:
            if frame is not None:
                frame.append((_TAG_VEC, vid, self._vec.get(vid)))
            self._vec[vid] = state
            # state.is_resolved with an identity shortcut: vector point
            # states usually share one array for both bounds, making the
            # elementwise comparison redundant.
            if state.may_u:
                resolved = not state.may_def
            else:
                resolved = state.lo is state.hi or bool(
                    np.array_equal(state.lo, state.hi)
                )
            if resolved:
                self._resolved[vid] = True
            return True
        new_md = state.may_def
        new_mu = state.may_u
        new_lo = float(state.lo) if new_md else _NAN
        new_hi = float(state.hi) if new_md else _NAN
        return self._write_num_scalar(vid, (new_lo, new_hi, new_mu, new_md), frame)

    # -- compiler interface ---------------------------------------------

    def _state_of(self, node_id: int) -> State:
        vid = self._final[node_id]
        if self._is_bool[vid]:
            return self._b[vid]
        return self._read_num(vid)

    def target_states(self, target_ids: Sequence[int]) -> Dict[int, State]:
        """States of the targets (at the final iteration when folded)."""
        return {
            target_id: self._state_of(int(target_id))
            for target_id in target_ids
        }

    def node_state(self, node_id: int, memo: Optional[dict] = None) -> State:
        """State of an arbitrary node (uniform across evaluator kinds).

        The columns *are* the memo, so ``memo`` is accepted and ignored.
        """
        return self._state_of(int(node_id))

    def count_unresolved(self, node_ids: Sequence[int]) -> int:
        """How many of the nodes are still unresolved (ordering hook)."""
        final = self._final
        resolved = self._resolved
        return sum(1 for node_id in node_ids if not resolved[final[node_id]])

    def _resolved_column(self) -> np.ndarray:
        """The resolved column as a NumPy array, cached per push/pop."""
        if self._resolved_cache_version != self._resolved_version:
            self._resolved_cache = np.asarray(self._resolved, dtype=bool)
            self._resolved_cache_version = self._resolved_version
        return self._resolved_cache

    def count_unresolved_in_cone(self, var_index: int) -> int:
        """Unresolved nodes in the variable's influence cone (vectorized).

        Node-granular like :meth:`count_unresolved` — each network node
        counts once, read at its final-iteration vertex — but the count
        is one fancy-indexed NumPy reduction over the precomputed cone
        (:meth:`MaskedProgram.final_cone`) instead of a Python scan.
        This is the scoring hook behind
        :class:`~repro.compile.ordering.ConeInfluenceOrder`; the column
        materialisation is shared by all cone queries at one branching
        point (nothing resolves between two ``push``/``pop`` calls).
        """
        cone = self._prog.final_cone(var_index)
        return int(len(cone) - np.count_nonzero(self._resolved_column()[cone]))


# Operator strings by ATOM_OPS code, for the exact-object atom path.
_OP_NAMES = tuple(
    op for op, _ in sorted(ATOM_OPS.items(), key=lambda item: item[1])
)


def _dist_vec(left: NumState, right: NumState, metric: int) -> NumState:
    """:func:`repro.compile.partial.num_dist`, specialised for the hot path.

    Point states (``lo is hi``, the common case: guard constants and
    sums of them) reduce to one exact distance; interval states follow
    the general bound computation, minus the per-call array coercions
    (vector states here always carry float64 arrays or floats).
    """
    may_u = left.may_u or right.may_u
    if not (left.may_def and right.may_def):
        return NumState.undefined()
    if left.lo is left.hi and right.lo is right.hi:
        diff = np.abs(left.lo - right.lo)
        if metric == 0:  # euclidean
            value = float(np.sqrt(np.sum(diff * diff)))
        elif metric == 1:  # sqeuclidean
            value = float(np.sum(diff * diff))
        else:  # manhattan
            value = float(np.sum(diff))
        return NumState(value, value, may_u, True)
    diff_lo = left.lo - right.hi
    diff_hi = left.hi - right.lo
    spans_zero = (diff_lo <= 0) & (diff_hi >= 0)
    abs_lo = np.where(spans_zero, 0.0, np.minimum(np.abs(diff_lo), np.abs(diff_hi)))
    abs_hi = np.maximum(np.abs(diff_lo), np.abs(diff_hi))
    if metric == 0:
        lo = float(np.sqrt(np.sum(abs_lo * abs_lo)))
        hi = float(np.sqrt(np.sum(abs_hi * abs_hi)))
    elif metric == 1:
        lo = float(np.sum(abs_lo * abs_lo))
        hi = float(np.sum(abs_hi * abs_hi))
    else:
        lo = float(np.sum(abs_lo))
        hi = float(np.sum(abs_hi))
    return NumState(lo, hi, may_u, True)
