"""The pluggable scheme registry: one dispatch point for all callers.

Every probability-computation scheme — the paper's Shannon-expansion
family, the naive per-world baseline, the MCDB-style Monte Carlo
comparator, and anything a downstream workload plugs in — registers
itself here with a *capability set*.  The platform facade
(:meth:`repro.core.platform.ENFrame.run`), the CLI, the distributed
compiler, and the benchmark harness all dispatch through
:func:`run_scheme` instead of hard-coding ``if scheme == ...`` chains,
so a new scheme is one :func:`register_scheme` call away from every
entry point.

Capabilities drive dispatch-time normalisation:

* ``epsilon`` — the scheme consumes an error budget; for schemes
  without it, ``epsilon`` is forced to ``0.0`` (exact/statistical
  schemes ignore budgets rather than erroring on them);
* ``statistical`` — bounds hold with a confidence level, not with
  certainty (Monte Carlo);
* ``distributed`` — the scheme can run under the job-based distributed
  compiler (``workers=`` is honoured; otherwise it is ignored);
* ``cluster`` — the distributed run can span machines over the socket
  transport (``execution="socket"`` plus ``listen=`` for remote
  ``repro cluster --connect`` workers; dropped to ``"simulate"`` for
  schemes without it);
* ``exact`` — bounds collapse to the exact probability;
* ``timeout`` — the scheme honours a wall-clock budget;
* ``bulk`` — the scheme evaluates through the vectorized bulk engine;
* ``kernel`` — the scheme's evaluator honours ``kernel=`` tier
  selection (:mod:`repro.engine.kernels`: jitted/native cone sweeps for
  the masked engine, compiled segment dispatch for the packed bulk
  engine); for schemes without it, ``kernel`` is dropped;
* ``packed`` — the scheme's bulk evaluation runs over bit-packed
  Boolean world columns (:mod:`repro.engine.packed`);
* ``evidence`` — the scheme conditions its answers on an evidence list
  (:func:`normalise_evidence`); for schemes without it, ``evidence``
  is dropped so conditioned and unconditioned requests cannot fragment
  the service layer's artifact cache.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..compile.result import CompilationResult
from ..network.nodes import EventNetwork
from ..worlds.variables import VariablePool

CAP_EPSILON = "epsilon"
CAP_STATISTICAL = "statistical"
CAP_DISTRIBUTED = "distributed"
CAP_CLUSTER = "cluster"
CAP_EXACT = "exact"
CAP_TIMEOUT = "timeout"
CAP_BULK = "bulk"
CAP_KERNEL = "kernel"
CAP_PACKED = "packed"
CAP_EVIDENCE = "evidence"

CAPABILITIES = frozenset(
    {
        CAP_EPSILON,
        CAP_STATISTICAL,
        CAP_DISTRIBUTED,
        CAP_CLUSTER,
        CAP_EXACT,
        CAP_TIMEOUT,
        CAP_BULK,
        CAP_KERNEL,
        CAP_PACKED,
        CAP_EVIDENCE,
    }
)


def normalise_evidence(evidence) -> Tuple[tuple, ...]:
    """Canonicalise an evidence list into sorted, deduplicated tuples.

    Each entry becomes ``("var", index, value)`` (the Bernoulli variable
    ``index`` is observed with truth ``value``) or ``("event", name)``
    (the Boolean network node bound to ``name`` is observed true).
    Accepted input forms per entry:

    * ``index`` (an ``int``) — shorthand for the variable being true;
    * ``(index, value)`` — a variable with an explicit truth value;
    * ``"name"`` (a ``str``) — a named network event;
    * ``{"var": index, "value": value}`` / ``{"event": name}`` — the
      JSON object form the service layer accepts;
    * ``("var", index, value)`` / ``("event", name)`` — the canonical
      forms themselves (lists too, so decoded JSON round-trips).

    Variable entries sort before event entries, variables by index and
    events by name, so equal evidence sets always canonicalise to the
    same tuple (the service layer hashes it into cache keys).
    Conflicting assignments to one variable raise ``ValueError``;
    ``None`` means no evidence.
    """
    if evidence is None:
        return ()
    if isinstance(evidence, (str, int, dict)):
        raise ValueError(
            f"evidence must be a list of entries, got {evidence!r}; "
            "wrap a single entry in a list"
        )
    assignments: Dict[int, bool] = {}
    events = set()
    for entry in evidence:
        kind, payload = _canonical_evidence_entry(entry)
        if kind == "var":
            index, value = payload
            previous = assignments.get(index)
            if previous is not None and previous != value:
                raise ValueError(
                    f"conflicting evidence for variable {index}: "
                    f"asserted both {previous} and {value}"
                )
            assignments[index] = value
        else:
            events.add(payload)
    return tuple(
        [("var", index, assignments[index]) for index in sorted(assignments)]
        + [("event", name) for name in sorted(events)]
    )


def _canonical_evidence_entry(entry) -> Tuple[str, object]:
    """One evidence entry → ``("var", (index, value))`` or ``("event", name)``."""
    if isinstance(entry, bool):
        raise ValueError(
            f"bad evidence entry {entry!r}: a bare bool names no variable"
        )
    if isinstance(entry, int):
        if entry < 0:
            raise ValueError(f"bad evidence entry {entry!r}: negative index")
        return ("var", (int(entry), True))
    if isinstance(entry, str):
        return ("event", entry)
    if isinstance(entry, dict):
        if "event" in entry:
            name = entry["event"]
            if not isinstance(name, str):
                raise ValueError(f"bad evidence entry {entry!r}")
            return ("event", name)
        if "var" in entry:
            index = entry["var"]
            value = entry.get("value", True)
            if isinstance(index, bool) or not isinstance(index, int) or index < 0:
                raise ValueError(f"bad evidence entry {entry!r}")
            if not isinstance(value, bool):
                raise ValueError(f"bad evidence entry {entry!r}")
            return ("var", (int(index), value))
        raise ValueError(f"bad evidence entry {entry!r}")
    if isinstance(entry, (tuple, list)):
        items = list(entry)
        if len(items) == 3 and items[0] == "var":
            return _canonical_evidence_entry({"var": items[1], "value": items[2]})
        if len(items) == 2 and items[0] == "event":
            return _canonical_evidence_entry({"event": items[1]})
        if (
            len(items) == 2
            and isinstance(items[0], int)
            and not isinstance(items[0], bool)
            and isinstance(items[1], bool)
        ):
            return ("var", (int(items[0]), items[1]))
        raise ValueError(f"bad evidence entry {entry!r}")
    raise ValueError(f"bad evidence entry {entry!r}")


@dataclass
class SchemeOptions:
    """Normalised run options handed to every scheme runner.

    ``order`` names a variable-ordering strategy for the Shannon
    schemes (``"frequency"``, ``"dynamic"`` — the cone-aware dynamic
    order — ``"dynamic-scan"``, ``"cone"``, ``"index"``, or an explicit
    index sequence; see :func:`repro.compile.ordering.make_order`).

    ``execution`` selects how a ``distributed``-capable scheme runs its
    workers (``"simulate"``, ``"threads"``, ``"process"``, or — for
    ``cluster``-capable schemes — ``"socket"``; see
    :mod:`repro.compile.distributed`); ``job_size`` is the distributed
    fork depth, either an explicit ``int`` or ``"adaptive"`` for the
    online cost model.  ``listen`` (``"host:port"``) makes a socket run
    wait for remote ``repro cluster --connect`` workers instead of
    spawning them locally.

    ``kernel`` names the evaluator tier for ``kernel``-capable schemes
    (one of :data:`repro.engine.kernels.KERNEL_NAMES`); ``None`` defers
    to the process default (``REPRO_KERNEL`` or ``auto``).

    ``evidence`` is the canonical evidence tuple of
    :func:`normalise_evidence` for ``evidence``-capable schemes
    (``exact-cond`` / ``lazy-cond``): the conditioning constraint the
    returned bounds are renormalised against.  Empty for every other
    scheme.

    This dataclass is the *public* typed options object: build one and
    pass it to :func:`run_scheme` (or ``ENFrame.run``) as ``options=``
    instead of spelling the keywords out — it is re-normalised through
    :func:`normalise_options` either way, so the two spellings cannot
    diverge.
    """

    epsilon: float = 0.0
    order: "str | Sequence[int]" = "frequency"
    workers: Optional[int] = None
    job_size: "int | str" = 3
    execution: str = "simulate"
    timeout: Optional[float] = None
    samples: int = 1000
    seed: int = 0
    confidence: float = 0.95
    kernel: Optional[str] = None
    listen: Optional[str] = None
    evidence: Tuple[tuple, ...] = ()


Runner = Callable[
    [EventNetwork, VariablePool, Optional[Sequence[str]], SchemeOptions],
    CompilationResult,
]


@dataclass(frozen=True)
class SchemeSpec:
    """One registered scheme: a name, a runner, and its capabilities."""

    name: str
    runner: Runner
    capabilities: FrozenSet[str]
    description: str = ""

    def has(self, capability: str) -> bool:
        return capability in self.capabilities


_REGISTRY: Dict[str, SchemeSpec] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        # Guard against re-entrancy during the import, but reset on
        # failure so the root-cause import error resurfaces on retry
        # instead of a misleading near-empty registry.
        _builtins_loaded = True
        try:
            from . import schemes

            schemes.register_builtins()
        except BaseException:
            _builtins_loaded = False
            raise


def register_scheme(
    name: str,
    runner: Optional[Runner] = None,
    *,
    capabilities: Iterable[str] = (),
    description: str = "",
    replace: bool = False,
):
    """Register a scheme (usable directly or as a decorator).

    ``capabilities`` must be drawn from :data:`CAPABILITIES`.  Duplicate
    names raise unless ``replace=True`` — re-registration is explicit,
    not accidental.
    """
    caps = frozenset(capabilities)
    unknown = caps - CAPABILITIES
    if unknown:
        raise ValueError(f"unknown capabilities {sorted(unknown)!r}")

    def _register(func: Runner) -> Runner:
        if not replace and name in _REGISTRY:
            raise ValueError(f"scheme {name!r} is already registered")
        _REGISTRY[name] = SchemeSpec(
            name=name,
            runner=func,
            capabilities=caps,
            description=description or (func.__doc__ or "").strip().split("\n")[0],
        )
        return func

    if runner is not None:
        return _register(runner)
    return _register


def unregister_scheme(name: str) -> None:
    # Load the built-ins first: unregistering e.g. "naive" before any
    # lookup must actually remove it, not pop from an empty registry
    # that the next lookup silently repopulates.
    _ensure_builtins()
    _REGISTRY.pop(name, None)


def reset_registry() -> None:
    """Restore the registry to its built-ins-only state.

    Drops every plugin and re-registers the built-ins, recovering any
    built-in removed with :func:`unregister_scheme` — without this, a
    dropped built-in would be lost for the rest of the process because
    the lazy-load flag stays set.
    """
    global _builtins_loaded
    _REGISTRY.clear()
    _builtins_loaded = False
    _ensure_builtins()


def get_scheme(name: str) -> SchemeSpec:
    """Look up a scheme; raises ``ValueError`` for unknown names."""
    _ensure_builtins()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {available_schemes()}"
        )
    return spec


def available_schemes(capability: Optional[str] = None) -> Tuple[str, ...]:
    """Registered scheme names (optionally filtered by capability).

    An unknown ``capability`` raises ``ValueError`` (matching
    :func:`register_scheme`) instead of silently matching nothing.
    """
    if capability is not None and capability not in CAPABILITIES:
        raise ValueError(
            f"unknown capability {capability!r}; "
            f"expected one of {sorted(CAPABILITIES)}"
        )
    _ensure_builtins()
    names = (
        name
        for name, spec in _REGISTRY.items()
        if capability is None or spec.has(capability)
    )
    return tuple(sorted(names))


def has_capability(name: str, capability: str) -> bool:
    return get_scheme(name).has(capability)


def scheme_capabilities(name: str) -> FrozenSet[str]:
    return get_scheme(name).capabilities


def normalise_options(
    name: str,
    *,
    epsilon: float = 0.0,
    order: "str | Sequence[int]" = "frequency",
    ordering: "str | Sequence[int] | None" = None,
    workers: Optional[int] = None,
    job_size: "int | str" = 3,
    execution: str = "simulate",
    timeout: Optional[float] = None,
    samples: int = 1000,
    seed: int = 0,
    confidence: float = 0.95,
    kernel: Optional[str] = None,
    listen: Optional[str] = None,
    evidence=None,
) -> SchemeOptions:
    """Normalise run options against the named scheme's capabilities.

    This is the canonicalisation half of :func:`run_scheme`, exposed so
    callers that *key* on options — the service layer's artifact cache
    hashes the normalised form, so e.g. ``exact`` requests with
    different ``epsilon`` or ``seed`` values share one cache entry —
    see exactly what the runner will see.

    Options irrelevant to the chosen scheme are normalised away rather
    than rejected: ``epsilon`` is zeroed for schemes without the
    ``epsilon`` capability; ``samples``/``seed``/``confidence`` revert
    to their defaults for schemes without the ``statistical``
    capability; ``workers`` is dropped for schemes that are not
    ``distributed``-capable — and with it ``execution``, which reverts
    to ``"simulate"`` — ``execution="socket"`` (and with it ``listen``)
    is dropped to ``"simulate"`` for distributed schemes without the
    ``cluster`` capability, and ``timeout`` is dropped for schemes
    without the ``timeout`` capability (matching the historical facade
    behaviour where e.g. ``naive`` ignored ``workers``), *except* for
    distributed runs, where it bounds the whole run in process mode (a
    wedged worker must not hang the caller).  ``ordering`` is an
    explicit alias for ``order`` (it wins when both are given) so
    callers can name the variable-ordering strategy without shadowing
    more generic ``order`` keywords of their own.  ``kernel`` (an
    evaluator tier name) is validated against
    :data:`repro.engine.kernels.KERNEL_NAMES` and dropped for schemes
    without the ``kernel`` capability.  ``evidence`` is canonicalised
    through :func:`normalise_evidence` (malformed entries raise) and
    dropped to ``()`` for schemes without the ``evidence`` capability.
    """
    spec = get_scheme(name)
    canonical_evidence = normalise_evidence(evidence)
    if kernel is not None:
        from .kernels import KERNEL_NAMES

        if kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
            )
    statistical = spec.has(CAP_STATISTICAL)
    distributed = spec.has(CAP_DISTRIBUTED) and workers is not None
    cluster = distributed and spec.has(CAP_CLUSTER)
    normalised_execution = execution if distributed else "simulate"
    if normalised_execution == "socket" and not cluster:
        normalised_execution = "simulate"
    return SchemeOptions(
        epsilon=epsilon if spec.has(CAP_EPSILON) else 0.0,
        order=order if ordering is None else ordering,
        workers=workers if spec.has(CAP_DISTRIBUTED) else None,
        job_size=job_size,
        execution=normalised_execution,
        timeout=timeout if spec.has(CAP_TIMEOUT) or distributed else None,
        samples=samples if statistical else 1000,
        seed=seed if statistical else 0,
        confidence=confidence if statistical else 0.95,
        kernel=kernel if spec.has(CAP_KERNEL) else None,
        listen=listen if normalised_execution == "socket" else None,
        evidence=canonical_evidence if spec.has(CAP_EVIDENCE) else (),
    )


def run_scheme(
    name: str,
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]] = None,
    options: Optional[SchemeOptions] = None,
    **kwargs,
) -> CompilationResult:
    """Dispatch one probability computation through the registry.

    Options come in either spelling — a :class:`SchemeOptions` instance
    via ``options=``, or the keyword options of
    :func:`normalise_options` (which documents how options irrelevant
    to the chosen scheme are normalised away rather than rejected) —
    but not both at once.  Both spellings pass through
    :func:`normalise_options` before reaching the scheme's registered
    runner, so an instance built for one scheme is re-normalised for
    the scheme actually named here.
    """
    spec = get_scheme(name)
    if options is not None:
        if kwargs:
            raise TypeError(
                "pass either a SchemeOptions instance via options= or "
                f"keyword options, not both (got {sorted(kwargs)!r})"
            )
        if not isinstance(options, SchemeOptions):
            raise TypeError(
                f"options must be a SchemeOptions, got {type(options).__name__}"
            )
        kwargs = {
            field.name: getattr(options, field.name)
            for field in fields(SchemeOptions)
        }
    return spec.runner(network, pool, targets, normalise_options(name, **kwargs))
