"""Built-in scheme registrations.

:func:`register_builtins` (called lazily by the registry on first
lookup, and again by :func:`repro.engine.registry.reset_registry`)
registers the paper's six schemes plus the two scalar cross-validation
oracles:

* ``exact`` / ``lazy`` / ``eager`` / ``hybrid`` — Shannon expansion
  (Algorithm 1), distributed-capable via ``workers=`` and
  cluster-capable via ``execution="socket"``;
* ``naive`` — bulk-vectorized world enumeration (flat and folded
  networks alike);
* ``montecarlo`` — bulk-vectorized MCDB-style sampling (flat and folded
  networks alike);
* ``naive-scalar`` / ``montecarlo-scalar`` — the original per-world
  recursive evaluators, kept as oracles for cross-validation;
* ``exact-cond`` / ``lazy-cond`` — conditioned queries: one base-scheme
  pass over the derived ``Φ ∧ C`` network plus interval renormalisation
  (:mod:`repro.engine.conditioning`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..compile.result import CompilationResult
from ..network.nodes import EventNetwork
from ..worlds.variables import VariablePool
from .registry import (
    CAP_BULK,
    CAP_CLUSTER,
    CAP_DISTRIBUTED,
    CAP_EPSILON,
    CAP_EVIDENCE,
    CAP_EXACT,
    CAP_KERNEL,
    CAP_PACKED,
    CAP_STATISTICAL,
    CAP_TIMEOUT,
    SchemeOptions,
    register_scheme,
)


def _run_shannon(
    scheme: str,
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]],
    options: SchemeOptions,
) -> CompilationResult:
    if options.workers is not None:
        from ..compile.distributed import DistributedCompiler

        coordinator = DistributedCompiler(
            network,
            pool,
            targets=targets,
            order=options.order,
            workers=options.workers,
            job_size=options.job_size,
            kernel=options.kernel,
            listen=options.listen,
        )
        try:
            return coordinator.run(
                scheme=scheme,
                epsilon=options.epsilon,
                execution=options.execution,
                timeout=options.timeout,
            )
        finally:
            # Process-mode pools are persistent per coordinator; the
            # registry path builds one coordinator per call, so tear
            # the workers down with it (no-op for in-memory modes).
            coordinator.close()
    from ..compile.compiler import compile_network

    return compile_network(
        network,
        pool,
        scheme=scheme,
        epsilon=options.epsilon,
        targets=targets,
        order=options.order,
        kernel=options.kernel,
    )


def _make_shannon_runner(scheme: str):
    def runner(network, pool, targets, options):
        return _run_shannon(scheme, network, pool, targets, options)

    runner.__name__ = f"run_{scheme}"
    return runner


def _run_naive(network, pool, targets, options):
    from ..worlds.naive import naive_probabilities

    return naive_probabilities(
        network,
        pool,
        targets=targets,
        timeout=options.timeout,
        kernel=options.kernel,
    )


def _run_naive_scalar(network, pool, targets, options):
    from ..worlds.naive import naive_probabilities_scalar

    result = naive_probabilities_scalar(
        network, pool, targets=targets, timeout=options.timeout
    )
    result.scheme = "naive-scalar"
    return result


def _run_montecarlo(network, pool, targets, options):
    from ..compile.montecarlo import monte_carlo_probabilities

    return monte_carlo_probabilities(
        network,
        pool,
        targets=targets,
        samples=options.samples,
        seed=options.seed,
        confidence=options.confidence,
        kernel=options.kernel,
    )


def _run_montecarlo_scalar(network, pool, targets, options):
    from ..compile.montecarlo import monte_carlo_probabilities_scalar

    result = monte_carlo_probabilities_scalar(
        network,
        pool,
        targets=targets,
        samples=options.samples,
        seed=options.seed,
        confidence=options.confidence,
    )
    result.scheme = "montecarlo-scalar"
    return result


def _make_conditioned_runner(label: str, base: str):
    def runner(network, pool, targets, options):
        from .conditioning import run_conditioned

        return run_conditioned(label, base, network, pool, targets, options)

    runner.__name__ = f"run_{label.replace('-', '_')}"
    return runner


def register_builtins() -> None:
    """(Re-)register every built-in scheme; idempotent by construction."""
    register_scheme(
        "exact",
        _make_shannon_runner("exact"),
        capabilities={CAP_EXACT, CAP_DISTRIBUTED, CAP_CLUSTER, CAP_KERNEL},
        description=(
            "Shannon expansion until every target is resolved on every branch"
        ),
        replace=True,
    )
    for scheme, description in (
        ("lazy", "exact exploration, stop tightening targets within 2eps"),
        ("eager", "spend the error budget as early as possible"),
        ("hybrid", "split the budget per branch, pass residuals rightwards"),
    ):
        register_scheme(
            scheme,
            _make_shannon_runner(scheme),
            capabilities={CAP_EPSILON, CAP_DISTRIBUTED, CAP_CLUSTER, CAP_KERNEL},
            description=description,
            replace=True,
        )
    register_scheme(
        "naive",
        _run_naive,
        capabilities={CAP_EXACT, CAP_TIMEOUT, CAP_BULK, CAP_KERNEL, CAP_PACKED},
        description="vectorized brute-force enumeration of all possible worlds",
        replace=True,
    )
    register_scheme(
        "naive-scalar",
        _run_naive_scalar,
        capabilities={CAP_EXACT, CAP_TIMEOUT},
        description="per-world recursive enumeration (cross-validation oracle)",
        replace=True,
    )
    register_scheme(
        "montecarlo",
        _run_montecarlo,
        capabilities={CAP_STATISTICAL, CAP_BULK, CAP_KERNEL, CAP_PACKED},
        description="vectorized MCDB-style Monte Carlo estimation",
        replace=True,
    )
    register_scheme(
        "montecarlo-scalar",
        _run_montecarlo_scalar,
        capabilities={CAP_STATISTICAL},
        description="per-sample Monte Carlo estimation (cross-validation oracle)",
        replace=True,
    )
    register_scheme(
        "exact-cond",
        _make_conditioned_runner("exact-cond", "exact"),
        capabilities={
            CAP_EXACT,
            CAP_EVIDENCE,
            CAP_DISTRIBUTED,
            CAP_CLUSTER,
            CAP_KERNEL,
        },
        description="exact conditional probabilities P(target | evidence)",
        replace=True,
    )
    register_scheme(
        "lazy-cond",
        _make_conditioned_runner("lazy-cond", "lazy"),
        capabilities={
            CAP_EPSILON,
            CAP_EVIDENCE,
            CAP_DISTRIBUTED,
            CAP_CLUSTER,
            CAP_KERNEL,
        },
        description=(
            "conditional probabilities with a lazy 2eps budget on the "
            "underlying joint pass"
        ),
        replace=True,
    )
