"""Built-in scheme registrations.

Importing this module (done lazily by the registry on first lookup)
registers the paper's six schemes plus the two scalar cross-validation
oracles:

* ``exact`` / ``lazy`` / ``eager`` / ``hybrid`` — Shannon expansion
  (Algorithm 1), distributed-capable via ``workers=``;
* ``naive`` — bulk-vectorized world enumeration (scalar fallback for
  folded networks);
* ``montecarlo`` — bulk-vectorized MCDB-style sampling (scalar fallback
  for folded networks);
* ``naive-scalar`` / ``montecarlo-scalar`` — the original per-world
  recursive evaluators, kept as oracles for cross-validation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..compile.result import CompilationResult
from ..network.nodes import EventNetwork
from ..worlds.variables import VariablePool
from .registry import (
    CAP_BULK,
    CAP_DISTRIBUTED,
    CAP_EPSILON,
    CAP_EXACT,
    CAP_STATISTICAL,
    CAP_TIMEOUT,
    SchemeOptions,
    register_scheme,
)


def _run_shannon(
    scheme: str,
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]],
    options: SchemeOptions,
) -> CompilationResult:
    if options.workers is not None:
        from ..compile.distributed import DistributedCompiler

        coordinator = DistributedCompiler(
            network,
            pool,
            targets=targets,
            order=options.order,
            workers=options.workers,
            job_size=options.job_size,
        )
        return coordinator.run(scheme=scheme, epsilon=options.epsilon)
    from ..compile.compiler import compile_network

    return compile_network(
        network,
        pool,
        scheme=scheme,
        epsilon=options.epsilon,
        targets=targets,
        order=options.order,
    )


def _register_shannon(scheme: str, capabilities, description: str) -> None:
    def runner(network, pool, targets, options):
        return _run_shannon(scheme, network, pool, targets, options)

    runner.__name__ = f"run_{scheme}"
    register_scheme(
        scheme, runner, capabilities=capabilities, description=description
    )


_register_shannon(
    "exact",
    {CAP_EXACT, CAP_DISTRIBUTED},
    "Shannon expansion until every target is resolved on every branch",
)
for _scheme, _description in (
    ("lazy", "exact exploration, stop tightening targets within 2eps"),
    ("eager", "spend the error budget as early as possible"),
    ("hybrid", "split the budget per branch, pass residuals rightwards"),
):
    _register_shannon(_scheme, {CAP_EPSILON, CAP_DISTRIBUTED}, _description)


@register_scheme(
    "naive",
    capabilities={CAP_EXACT, CAP_TIMEOUT, CAP_BULK},
    description="vectorized brute-force enumeration of all possible worlds",
)
def _run_naive(network, pool, targets, options):
    from ..worlds.naive import naive_probabilities

    return naive_probabilities(
        network, pool, targets=targets, timeout=options.timeout
    )


@register_scheme(
    "naive-scalar",
    capabilities={CAP_EXACT, CAP_TIMEOUT},
    description="per-world recursive enumeration (cross-validation oracle)",
)
def _run_naive_scalar(network, pool, targets, options):
    from ..worlds.naive import naive_probabilities_scalar

    result = naive_probabilities_scalar(
        network, pool, targets=targets, timeout=options.timeout
    )
    result.scheme = "naive-scalar"
    return result


@register_scheme(
    "montecarlo",
    capabilities={CAP_STATISTICAL, CAP_BULK},
    description="vectorized MCDB-style Monte Carlo estimation",
)
def _run_montecarlo(network, pool, targets, options):
    from ..compile.montecarlo import monte_carlo_probabilities

    return monte_carlo_probabilities(
        network,
        pool,
        targets=targets,
        samples=options.samples,
        seed=options.seed,
        confidence=options.confidence,
    )


@register_scheme(
    "montecarlo-scalar",
    capabilities={CAP_STATISTICAL},
    description="per-sample Monte Carlo estimation (cross-validation oracle)",
)
def _run_montecarlo_scalar(network, pool, targets, options):
    from ..compile.montecarlo import monte_carlo_probabilities_scalar

    result = monte_carlo_probabilities_scalar(
        network,
        pool,
        targets=targets,
        samples=options.samples,
        seed=options.seed,
        confidence=options.confidence,
    )
    result.scheme = "montecarlo-scalar"
    return result
