"""Conditioning as registered schemes: ``exact-cond`` / ``lazy-cond``.

Conditioning a probabilistic database on evidence ``C`` (Koch &
Olteanu) reduces, for bounds, to two marginals: ``P(t | C) =
P(t ∧ C) / P(C)``.  The runners here build a *derived* network — a
structural copy of the queried one whose targets are replaced by their
conjunction with the evidence constraint, plus one extra target for the
constraint itself — run the base scheme (``exact`` or ``lazy``) over
it in **one** engine pass, and renormalise the returned bounds by
interval division:

* ``lower = joint_lower / constraint_upper``
* ``upper = min(1, joint_upper / constraint_lower)`` (``1.0`` when the
  constraint's lower bound is ``0`` — division by a vanishing evidence
  probability cannot tighten anything)

which is exactly the historical ``db/conditioning.py`` arithmetic, now
reachable from every entry point through the registry.  An evidence
probability with upper bound ``0`` raises ``ZeroDivisionError``:
conditioning on an almost-surely-false event is undefined.

The derived network is a *copy* because the original may be shared (the
service layer caches materialised networks); growing it in place would
leak conditioning nodes into unconditioned queries.  Node ids are
preserved by re-interning in id order — ``EventNetwork.nodes`` is
topologically ordered, children before parents, so every child id is
already allocated when its parent is re-interned.

This module is deliberately *not* an entry point: it is reached only
through the registry (``repro.engine.schemes`` registers the runners)
and delegates back through :func:`repro.engine.registry.run_scheme`,
so distributed execution, cluster transport, and kernel tiers all
compose with conditioning for free.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple

from ..compile.result import CompilationResult
from ..network.build import _payload_key
from ..network.folded import FoldedNetwork
from ..network.nodes import EventNetwork, Kind, Node
from ..worlds.variables import VariablePool
from .registry import SchemeOptions, run_scheme

#: The derived network's target name for the evidence constraint.
EVIDENCE_TARGET = "__evidence__"


def _intern_key(node: Node):
    """Reconstruct the builder's intern key for an existing node."""
    if node.kind is Kind.GUARD:
        return _payload_key(node.payload)
    return node.payload


def copy_network(network: EventNetwork) -> EventNetwork:
    """A structural copy that may grow without touching the original.

    Preserves node ids (the copy re-interns in id order over the
    topologically sorted node list), names, targets, and — for folded
    networks — the iteration count and slot bindings.
    """
    if isinstance(network, FoldedNetwork):
        copied: EventNetwork = FoldedNetwork(network.iterations)
    else:
        copied = EventNetwork()
    for node in network.nodes:
        node_id = copied._intern(
            node.kind, node.children, node.payload, _intern_key(node)
        )
        if node_id != node.id:
            raise RuntimeError(
                f"node {node.id} re-interned as {node_id}; the network was "
                "not built through the interning builder"
            )
    copied.targets = dict(network.targets)
    copied.names = dict(network.names)
    if isinstance(network, FoldedNetwork):
        assert isinstance(copied, FoldedNetwork)
        copied.slots = dict(network.slots)
    return copied


def _evidence_node(network: EventNetwork, entry: tuple) -> int:
    """Intern one canonical evidence entry as a Boolean node."""
    if entry[0] == "var":
        _, index, value = entry
        node_id = network._intern(Kind.VAR, (), index, index)
        if not value:
            node_id = network._intern(Kind.NOT, (node_id,), None, None)
        return node_id
    _, name = entry
    node_id = network.names.get(name)
    if node_id is None:
        raise ValueError(
            f"unknown evidence event {name!r}; evidence events must be "
            "names bound on the network"
        )
    if not network.nodes[node_id].is_boolean:
        raise ValueError(f"evidence event {name!r} is not a Boolean event")
    return node_id


def conditioned_network(
    network: EventNetwork,
    evidence: Sequence[tuple],
    target_names: Sequence[str],
) -> Tuple[EventNetwork, str]:
    """Derive the one-pass conditioning network.

    Returns ``(derived, constraint_name)``: the derived network carries
    every requested target replaced by ``target ∧ C`` under its
    original name, plus the constraint ``C`` itself as an extra target,
    so a single base-scheme pass yields every joint bound *and* the
    evidence bound against one shared Shannon tree.
    """
    if not evidence:
        raise ValueError("conditioning requires at least one evidence entry")
    derived = copy_network(network)
    literals: List[int] = [_evidence_node(derived, entry) for entry in evidence]
    if len(literals) == 1:
        constraint = literals[0]
    else:
        constraint = derived._intern(Kind.AND, tuple(literals), None, None)
    taken = set(target_names) | set(derived.targets) | set(derived.names)
    constraint_name = EVIDENCE_TARGET
    while constraint_name in taken:
        constraint_name = "_" + constraint_name
    for name in target_names:
        joint = derived._intern(
            Kind.AND, (network.targets[name], constraint), None, None
        )
        derived.targets[name] = joint
    derived.add_target(constraint_name, constraint)
    return derived, constraint_name


def run_conditioned(
    label: str,
    base: str,
    network: EventNetwork,
    pool: VariablePool,
    targets,
    options: SchemeOptions,
) -> CompilationResult:
    """The shared runner behind ``exact-cond`` and ``lazy-cond``."""
    names = list(targets) if targets is not None else list(network.targets)
    if not names:
        raise ValueError("network has no compilation targets")
    # `lazy` rejects a zero budget; an epsilon-free lazy-cond request is
    # just an exact conditional, so delegate there.
    if base != "exact" and options.epsilon <= 0.0:
        base = "exact"
    evidence = options.evidence
    base_options = replace(options, evidence=())
    if not evidence:
        result = run_scheme(base, network, pool, targets=names, options=base_options)
        result.scheme = label
        return result
    derived, constraint_name = conditioned_network(network, evidence, names)
    raw = run_scheme(
        base,
        derived,
        pool,
        targets=names + [constraint_name],
        options=base_options,
    )
    constraint_lower, constraint_upper = raw.bounds[constraint_name]
    if constraint_upper <= 0.0:
        raise ZeroDivisionError(
            "cannot condition on an event with zero probability"
        )
    bounds = {}
    for name in names:
        joint_lower, joint_upper = raw.bounds[name]
        lower = joint_lower / constraint_upper
        upper = (
            1.0
            if constraint_lower <= 0.0
            else min(1.0, joint_upper / constraint_lower)
        )
        bounds[name] = (lower, upper)
    result = CompilationResult(
        bounds=bounds,
        scheme=label,
        epsilon=raw.epsilon,
        seconds=raw.seconds,
        tree_nodes=raw.tree_nodes,
        evals=raw.evals,
        max_depth=raw.max_depth,
        jobs=raw.jobs,
        workers=raw.workers,
        makespan=raw.makespan,
        extra=dict(raw.extra),
    )
    result.extra["evidence_terms"] = float(len(evidence))
    result.extra["evidence_lower"] = constraint_lower
    result.extra["evidence_upper"] = constraint_upper
    return result
