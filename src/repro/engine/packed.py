"""Bit-packed Boolean world columns for the bulk engine.

The plain bulk evaluator (:mod:`repro.engine.bulk`) carries one byte
per world per Boolean node.  Here Boolean columns are ``uint64`` words
packing 64 worlds each (``bitorder="little"``: world ``w`` is bit
``w % 64`` of word ``w // 64``), so AND/OR/NOT over a batch touch 64x
less memory and run as word-wise machine ops.  Packing and unpacking
happen only at the numeric boundary: variables pack once per batch,
ATOM results pack after comparison, GUARD/COND unpack their event
column on demand, and probability reduction unpacks the root columns.

Invariant: bits at positions ``>= worlds`` in the last word are always
zero.  Producers that can set them (NOT, the empty AND) re-mask the
last word with :func:`tail_mask`, so consumers never need to.

Two evaluators share the format:

* :class:`PackedBulkEvaluator` (flat networks) compiles the schedule
  into a *plan*: runs of consecutive AND/OR/NOT nodes become segments
  dispatched as one call into the kernel tier of
  :mod:`repro.engine.kernels` (native/numba when available, a
  vectorized NumPy loop otherwise) over a single ``(slots, words)``
  word matrix;
* :class:`PackedFoldedBulkEvaluator` (folded networks) keeps the base
  class's layer-sweep machinery and swaps only ``_compute``: Boolean
  values flow through the loop state as :class:`_PackedCol` handles.

Both are drop-in replacements behind
:func:`repro.engine.bulk.make_bulk_evaluator` — same ``evaluate``
contract, same dense bool outputs — and the property suite holds them
to exact Boolean equality with the unpacked evaluators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..network.folded import FoldedNetwork
from ..network.nodes import EventNetwork, Kind
from .bulk import BulkEvaluator, FoldedBulkEvaluator, _compare, _Num

_K_TRUE = int(Kind.TRUE)
_K_FALSE = int(Kind.FALSE)
_K_VAR = int(Kind.VAR)
_K_NOT = int(Kind.NOT)
_K_AND = int(Kind.AND)
_K_OR = int(Kind.OR)
_K_ATOM = int(Kind.ATOM)
_K_GUARD = int(Kind.GUARD)
_K_COND = int(Kind.COND)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# Segment op codes (shared with the kernels' ``packed_eval``).
_OP_AND = 0
_OP_OR = 1
_OP_NOT = 2


def n_words(worlds: int) -> int:
    """Words needed for a ``worlds``-bit column."""
    return (int(worlds) + 63) // 64


def tail_mask(worlds: int) -> np.uint64:
    """Mask keeping only the valid bits of the last word."""
    rem = int(worlds) % 64
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def pack_bool_column(column: np.ndarray) -> np.ndarray:
    """Pack a ``(W,)`` bool column into ``ceil(W / 64)`` uint64 words."""
    column = np.ascontiguousarray(column, dtype=bool)
    packed = np.packbits(column, bitorder="little")
    width = n_words(column.shape[0]) * 8
    if packed.shape[0] != width:
        padded = np.zeros(width, dtype=np.uint8)
        padded[: packed.shape[0]] = packed
        packed = padded
    return packed.view(np.uint64)


def unpack_bool_column(words: np.ndarray, worlds: int) -> np.ndarray:
    """The inverse of :func:`pack_bool_column` (first ``worlds`` bits)."""
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8),
        count=int(worlds),
        bitorder="little",
    )
    return bits.view(np.bool_)


def _segments_numpy(ops, out, arg_off, arg_idx, matrix, tail) -> None:
    """Pure-NumPy segment dispatch (the no-compiler fallback tier)."""
    if matrix.shape[1] == 0:
        return
    for i in range(len(ops)):
        op = ops[i]
        o = out[i]
        srcs = arg_idx[arg_off[i] : arg_off[i + 1]]
        if op == _OP_NOT:
            np.bitwise_not(matrix[srcs[0]], out=matrix[o])
            matrix[o, -1] &= tail
        elif op == _OP_AND:
            if len(srcs) == 0:
                matrix[o] = _ALL_ONES
                matrix[o, -1] &= tail
            else:
                np.bitwise_and.reduce(matrix[srcs], axis=0, out=matrix[o])
        else:
            if len(srcs) == 0:
                matrix[o] = 0
            else:
                np.bitwise_or.reduce(matrix[srcs], axis=0, out=matrix[o])


class _Plan:
    """A compiled schedule for one set of roots.

    ``steps`` interleave, in dependency order:

    * ``("seg", ops, out, arg_off, arg_idx)`` — one batched run of
      packed AND/OR/NOT nodes (int64 arrays, kernel calling convention);
    * ``("var", slot, var_index)`` / ``("const", slot, bit)`` — source
      columns packed straight into the matrix;
    * ``("atom", node_id, slot)`` — numeric comparison packed into a
      slot;
    * ``("num", node_id)`` — any other node, delegated to the base
      class's ``_compute`` over the dense values dict.
    """

    __slots__ = ("steps", "slots", "order", "use_counts", "roots")

    def __init__(self, steps, slots, order, use_counts, roots):
        self.steps = steps
        self.slots = slots  # node_id -> matrix row for Boolean nodes
        self.order = order
        self.use_counts = use_counts
        self.roots = roots


class PackedBulkEvaluator(BulkEvaluator):
    """Flat bulk evaluation over bit-packed Boolean columns."""

    packed = True

    def __init__(
        self, network: EventNetwork, kernel: Optional[str] = None
    ) -> None:
        super().__init__(network)
        from . import kernels

        name = kernel if kernel is not None else kernels.default_kernel()
        if name not in kernels.KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {name!r}; expected one of "
                f"{kernels.KERNEL_NAMES}"
            )
        self._backend = None
        if name != "python":
            self._backend = kernels.get_backend(name)
        self.kernel = self._backend.name if self._backend else "numpy"
        self._plans: Dict[tuple, _Plan] = {}

    # ------------------------------------------------------------------

    def _plan(self, roots: List[int]) -> _Plan:
        key = tuple(roots)
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        flat = self.flat
        schedule = flat.schedule(roots)
        order = [int(raw) for raw in schedule]
        use_counts = flat.use_counts(schedule)
        slots: Dict[int, int] = {}
        steps: List[tuple] = []
        seg_ops: List[int] = []
        seg_out: List[int] = []
        seg_args: List[List[int]] = []

        def flush() -> None:
            if not seg_ops:
                return
            arg_off = np.zeros(len(seg_args) + 1, dtype=np.int64)
            np.cumsum(
                [len(args) for args in seg_args], out=arg_off[1:]
            )
            steps.append(
                (
                    "seg",
                    np.asarray(seg_ops, dtype=np.int64),
                    np.asarray(seg_out, dtype=np.int64),
                    arg_off,
                    np.asarray(
                        [s for args in seg_args for s in args],
                        dtype=np.int64,
                    ),
                )
            )
            seg_ops.clear()
            seg_out.clear()
            seg_args.clear()

        for node_id in order:
            kind = int(flat.kinds[node_id])
            children = [int(child) for child in flat.children(node_id)]
            if kind in (_K_NOT, _K_AND, _K_OR):
                slot = len(slots)
                slots[node_id] = slot
                seg_ops.append(
                    _OP_NOT
                    if kind == _K_NOT
                    else (_OP_AND if kind == _K_AND else _OP_OR)
                )
                seg_out.append(slot)
                seg_args.append([slots[child] for child in children])
            elif kind == _K_VAR:
                slot = len(slots)
                slots[node_id] = slot
                flush()
                steps.append(("var", slot, int(flat.var_index[node_id])))
            elif kind in (_K_TRUE, _K_FALSE):
                slot = len(slots)
                slots[node_id] = slot
                flush()
                steps.append(("const", slot, 1 if kind == _K_TRUE else 0))
            elif kind == _K_ATOM:
                slot = len(slots)
                slots[node_id] = slot
                flush()
                steps.append(("atom", node_id, slot))
            else:
                flush()
                steps.append(("num", node_id))
        flush()
        plan = _Plan(steps, slots, order, use_counts, list(roots))
        self._plans[key] = plan
        return plan

    # ------------------------------------------------------------------

    def evaluate(
        self, assignments: np.ndarray, node_ids: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        flat = self.flat
        roots = [int(node_id) for node_id in node_ids]
        plan = self._plan(roots)
        worlds = int(assignments.shape[0])
        words = n_words(worlds)
        tail = tail_mask(worlds)
        matrix = np.zeros((max(len(plan.slots), 1), words), dtype=np.uint64)
        values: Dict[int, object] = {}
        dense_cache: Dict[int, np.ndarray] = {}
        remaining = plan.use_counts.copy()
        keep = set(roots)
        slots = plan.slots
        backend = self._backend

        def dense(node_id: int) -> np.ndarray:
            column = dense_cache.get(node_id)
            if column is None:
                column = unpack_bool_column(matrix[slots[node_id]], worlds)
                dense_cache[node_id] = column
            return column

        for step in plan.steps:
            tag = step[0]
            if tag == "seg":
                _, ops, out, arg_off, arg_idx = step
                if backend is not None:
                    backend.run_packed(ops, out, arg_off, arg_idx, matrix, tail)
                else:
                    _segments_numpy(ops, out, arg_off, arg_idx, matrix, tail)
                continue
            if tag == "var":
                _, slot, var_index = step
                matrix[slot] = pack_bool_column(assignments[:, var_index])
                continue
            if tag == "const":
                _, slot, bit = step
                if bit:
                    matrix[slot] = _ALL_ONES
                    matrix[slot, -1:] &= tail
                continue
            if tag == "atom":
                _, node_id, slot = step
                children = flat.children(node_id)
                left: _Num = values[int(children[0])]
                right: _Num = values[int(children[1])]
                holds = _compare(
                    int(flat.atom_op[node_id]), left.value, right.value
                )
                matrix[slot] = pack_bool_column(
                    holds | ~left.defined | ~right.defined
                )
            else:  # "num"
                node_id = step[1]
                children = flat.children(node_id)
                kind = int(flat.kinds[node_id])
                if kind in (_K_GUARD, _K_COND):
                    # The event operand lives in the word matrix; the
                    # base numeric path wants it dense.
                    event = int(children[0])
                    if event not in values:
                        values[event] = dense(event)
                values[node_id] = self._compute(
                    kind, node_id, children, values, assignments, worlds
                )
            # Free numeric intermediates exactly like the base class;
            # packed columns live in the (already-bounded) matrix.
            for raw_child in flat.children(node_id):
                child = int(raw_child)
                remaining[child] -= 1
                if (
                    remaining[child] == 0
                    and child not in keep
                    and child not in slots
                ):
                    values.pop(child, None)

        results: Dict[int, np.ndarray] = {}
        for root in roots:
            if root in slots:
                results[root] = dense(root)
            else:
                results[root] = values[root]
        return results


class _PackedCol:
    """A packed Boolean column flowing through the folded layer sweep."""

    __slots__ = ("words", "worlds", "_dense")

    def __init__(self, words: np.ndarray, worlds: int, dense=None):
        self.words = words
        self.worlds = worlds
        self._dense = dense

    def dense(self) -> np.ndarray:
        if self._dense is None:
            self._dense = unpack_bool_column(self.words, self.worlds)
        return self._dense


class PackedFoldedBulkEvaluator(FoldedBulkEvaluator):
    """Folded bulk evaluation with packed Boolean loop state.

    Reuses every sweep/scheduling mechanism of the base class — only
    ``_compute`` changes, so loop state passes packed column handles
    between iterations instead of dense byte arrays.  Folded layers are
    small, so per-node NumPy word ops (no segment batching) already
    capture the packing win.
    """

    packed = True
    kernel = "numpy"

    def __init__(self, network: FoldedNetwork) -> None:
        super().__init__(network)
        self._pack_cache: Optional[Dict[int, _PackedCol]] = None

    def evaluate(
        self, assignments: np.ndarray, node_ids: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        self._pack_cache = {}
        try:
            raw = super().evaluate(assignments, node_ids)
        finally:
            self._pack_cache = None
        return {
            node_id: (
                value.dense() if isinstance(value, _PackedCol) else value
            )
            for node_id, value in raw.items()
        }

    def _compute(
        self,
        kind: int,
        node_id: int,
        children: np.ndarray,
        values: Dict[int, object],
        assignments: np.ndarray,
        worlds: int,
    ):
        flat = self.flat
        if kind == _K_VAR:
            var_index = int(flat.var_index[node_id])
            cache = self._pack_cache
            cached = None if cache is None else cache.get(var_index)
            if cached is None:
                cached = _PackedCol(
                    pack_bool_column(assignments[:, var_index]), worlds
                )
                if cache is not None:
                    cache[var_index] = cached
            return cached
        if kind == _K_TRUE:
            column = np.full(n_words(worlds), _ALL_ONES, dtype=np.uint64)
            if column.shape[0]:
                column[-1] &= tail_mask(worlds)
            return _PackedCol(column, worlds)
        if kind == _K_FALSE:
            return _PackedCol(
                np.zeros(n_words(worlds), dtype=np.uint64), worlds
            )
        if kind == _K_NOT:
            child: _PackedCol = values[int(children[0])]
            column = ~child.words
            if column.shape[0]:
                column[-1] &= tail_mask(worlds)
            return _PackedCol(column, worlds)
        if kind == _K_AND:
            if len(children) == 0:
                return self._compute(
                    _K_TRUE, node_id, children, values, assignments, worlds
                )
            column = values[int(children[0])].words.copy()
            for raw_child in children[1:]:
                column &= values[int(raw_child)].words
            return _PackedCol(column, worlds)
        if kind == _K_OR:
            if len(children) == 0:
                return self._compute(
                    _K_FALSE, node_id, children, values, assignments, worlds
                )
            column = values[int(children[0])].words.copy()
            for raw_child in children[1:]:
                column |= values[int(raw_child)].words
            return _PackedCol(column, worlds)
        if kind == _K_ATOM:
            left: _Num = values[int(children[0])]
            right: _Num = values[int(children[1])]
            holds = _compare(
                int(flat.atom_op[node_id]), left.value, right.value
            )
            dense = holds | ~left.defined | ~right.defined
            return _PackedCol(pack_bool_column(dense), worlds, dense=dense)
        if kind == _K_GUARD:
            event: _PackedCol = values[int(children[0])]
            constant = np.asarray(flat.guard_values[node_id], dtype=float)
            value = np.broadcast_to(constant, (worlds,) + constant.shape)
            return _Num(event.dense(), value)
        if kind == _K_COND:
            event: _PackedCol = values[int(children[0])]
            child: _Num = values[int(children[1])]
            return _Num(event.dense() & child.defined, child.value)
        return super()._compute(
            kind, node_id, children, values, assignments, worlds
        )
