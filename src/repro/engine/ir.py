"""Flattened intermediate representation of event networks.

An :class:`~repro.network.nodes.EventNetwork` stores nodes as Python
records; every evaluator that walks them pays interpreter overhead per
node *per world*.  Flattening turns the network into a handful of NumPy
arrays — kind codes, a CSR operand table, and per-kind payload columns —
computed once and cached on the network, so bulk evaluators can sweep
the whole DAG in topological order with one vectorized operation per
node regardless of how many worlds are being evaluated.

Folded networks (:class:`~repro.network.folded.FoldedNetwork`) carry
loop-input slots whose meaning changes per iteration; they have no
static flat form and raise :class:`UnsupportedNetworkError`, signalling
callers to fall back to the scalar evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..network.nodes import EventNetwork, Kind

# Dense operator codes for the payload columns.
ATOM_OPS: Dict[str, int] = {"<=": 0, "<": 1, ">=": 2, ">": 3, "==": 4}
DIST_METRICS: Dict[str, int] = {"euclidean": 0, "sqeuclidean": 1, "manhattan": 2}


class UnsupportedNetworkError(TypeError):
    """The network has no static flat form (e.g. folded loop inputs)."""


@dataclass
class FlatNetwork:
    """One event network flattened into dense arrays.

    Node ids are preserved: row ``i`` of every array describes node ``i``
    of the source network.  ``child_offsets``/``child_indices`` form a
    CSR adjacency (children of node ``i`` are
    ``child_indices[child_offsets[i]:child_offsets[i + 1]]``), already in
    topological order because the builder interns children before
    parents.
    """

    kinds: np.ndarray  # (N,) int16 — Kind codes
    child_offsets: np.ndarray  # (N + 1,) int64
    child_indices: np.ndarray  # (E,) int64
    var_index: np.ndarray  # (N,) int64 — pool index for VAR nodes, else -1
    atom_op: np.ndarray  # (N,) int8 — ATOM_OPS code for ATOM nodes, else -1
    pow_exponent: np.ndarray  # (N,) int64 — exponent for POW nodes, else 0
    dist_metric: np.ndarray  # (N,) int8 — DIST_METRICS code, else -1
    guard_values: Dict[int, object]  # node id -> constant (float or vector)
    targets: Dict[str, int]
    _schedules: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)
    _use_counts: Dict[bytes, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.kinds)

    def children(self, node_id: int) -> np.ndarray:
        return self.child_indices[
            self.child_offsets[node_id] : self.child_offsets[node_id + 1]
        ]

    def schedule(self, roots: Sequence[int]) -> np.ndarray:
        """Node ids reachable from ``roots``, in evaluation order.

        Node ids are already topological (children precede parents), so
        the schedule is the sorted reachable set.  Cached per root set —
        repeated bulk runs over the same targets pay for reachability
        once.
        """
        key = tuple(sorted(set(int(r) for r in roots)))
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        seen = np.zeros(len(self.kinds), dtype=bool)
        stack = list(key)
        while stack:
            node_id = stack.pop()
            if seen[node_id]:
                continue
            seen[node_id] = True
            stack.extend(int(c) for c in self.children(node_id))
        order = np.flatnonzero(seen)
        self._schedules[key] = order
        return order

    def use_counts(self, order: np.ndarray) -> np.ndarray:
        """How many scheduled parents consume each node (for freeing).

        Cached per schedule (evaluators decrement the counts in place,
        so a fresh copy is returned each call).
        """
        key = order.tobytes()
        counts = self._use_counts.get(key)
        if counts is None:
            counts = np.zeros(len(self.kinds), dtype=np.int64)
            for node_id in order:
                for child in self.children(int(node_id)):
                    counts[child] += 1
            self._use_counts[key] = counts
        return counts.copy()


def supports_bulk(network: EventNetwork) -> bool:
    """Can this network be flattened for bulk evaluation?"""
    try:
        flatten(network)
    except UnsupportedNetworkError:
        return False
    return True


def flatten(network: EventNetwork) -> FlatNetwork:
    """Flatten ``network`` (cached: repeated calls reuse the arrays).

    The cache is invalidated when the network grows (builders append
    nodes through the same object).
    """
    cached = getattr(network, "_flat_ir", None)
    if cached is not None and cached[0] == len(network.nodes):
        return cached[1]
    flat = _flatten_uncached(network)
    try:
        network._flat_ir = (len(network.nodes), flat)
    except AttributeError:  # pragma: no cover - exotic network subclasses
        pass
    return flat


def _flatten_uncached(network: EventNetwork) -> FlatNetwork:
    count = len(network.nodes)
    kinds = np.empty(count, dtype=np.int16)
    var_index = np.full(count, -1, dtype=np.int64)
    atom_op = np.full(count, -1, dtype=np.int8)
    pow_exponent = np.zeros(count, dtype=np.int64)
    dist_metric = np.full(count, -1, dtype=np.int8)
    guard_values: Dict[int, object] = {}
    offsets = np.zeros(count + 1, dtype=np.int64)
    child_lists: List[Tuple[int, ...]] = []

    for node in network.nodes:
        kind = node.kind
        if kind is Kind.LOOP_IN:
            raise UnsupportedNetworkError(
                "folded networks (loop-input nodes) have no flat form"
            )
        kinds[node.id] = int(kind)
        child_lists.append(node.children)
        offsets[node.id + 1] = offsets[node.id] + len(node.children)
        for child in node.children:
            if child >= node.id:
                raise UnsupportedNetworkError(
                    "network node order is not topological"
                )
        if kind is Kind.VAR:
            var_index[node.id] = node.payload
        elif kind is Kind.ATOM:
            atom_op[node.id] = ATOM_OPS[node.payload]
        elif kind is Kind.POW:
            pow_exponent[node.id] = node.payload
        elif kind is Kind.DIST:
            dist_metric[node.id] = DIST_METRICS[node.payload]
        elif kind is Kind.GUARD:
            value = node.payload
            if isinstance(value, np.ndarray):
                guard_values[node.id] = np.asarray(value, dtype=float)
            else:
                guard_values[node.id] = float(value)

    child_indices = np.fromiter(
        (c for children in child_lists for c in children),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return FlatNetwork(
        kinds=kinds,
        child_offsets=offsets,
        child_indices=child_indices,
        var_index=var_index,
        atom_op=atom_op,
        pow_exponent=pow_exponent,
        dist_metric=dist_metric,
        guard_values=guard_values,
        targets=dict(network.targets),
    )
