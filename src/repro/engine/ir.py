"""Flattened intermediate representation of event networks.

An :class:`~repro.network.nodes.EventNetwork` stores nodes as Python
records; every evaluator that walks them pays interpreter overhead per
node *per world*.  Flattening turns the network into a handful of NumPy
arrays — kind codes, a CSR operand table, and per-kind payload columns —
computed once and cached on the network, so bulk evaluators can sweep
the whole DAG in topological order with one vectorized operation per
node regardless of how many worlds are being evaluated.

Folded networks (:class:`~repro.network.folded.FoldedNetwork`) carry
loop-input slots whose meaning changes per iteration, so they have no
*static* flat form (:func:`flatten` raises
:class:`UnsupportedNetworkError` on them).  They flatten through
:func:`flatten_folded` instead, which produces a :class:`FoldedFlatIR`:
loop-input nodes become state columns, the loop-independent prefix is
scheduled once, and the loop-dependent layer is scheduled for one sweep
per iteration with slot state carried via the init/next node bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..network.folded import FoldedNetwork
from ..network.nodes import EventNetwork, Kind

# Dense operator codes for the payload columns.
ATOM_OPS: Dict[str, int] = {"<=": 0, "<": 1, ">=": 2, ">": 3, "==": 4}
DIST_METRICS: Dict[str, int] = {"euclidean": 0, "sqeuclidean": 1, "manhattan": 2}

# Kind codes whose nodes are Boolean-valued.  Shared by the masked
# engine, the packed bulk columns, and the kernel tier — one
# classification, three consumers.
BOOL_KIND_CODES = frozenset(
    int(kind)
    for kind in (
        Kind.TRUE,
        Kind.FALSE,
        Kind.VAR,
        Kind.NOT,
        Kind.AND,
        Kind.OR,
        Kind.ATOM,
    )
)


class UnsupportedNetworkError(TypeError):
    """The network has no static flat form (e.g. folded loop inputs)."""


@dataclass
class FlatNetwork:
    """One event network flattened into dense arrays.

    Node ids are preserved: row ``i`` of every array describes node ``i``
    of the source network.  ``child_offsets``/``child_indices`` form a
    CSR adjacency (children of node ``i`` are
    ``child_indices[child_offsets[i]:child_offsets[i + 1]]``), already in
    topological order because the builder interns children before
    parents.
    """

    kinds: np.ndarray  # (N,) int16 — Kind codes
    child_offsets: np.ndarray  # (N + 1,) int64
    child_indices: np.ndarray  # (E,) int64
    var_index: np.ndarray  # (N,) int64 — pool index for VAR nodes, else -1
    atom_op: np.ndarray  # (N,) int8 — ATOM_OPS code for ATOM nodes, else -1
    pow_exponent: np.ndarray  # (N,) int64 — exponent for POW nodes, else 0
    dist_metric: np.ndarray  # (N,) int8 — DIST_METRICS code, else -1
    guard_values: Dict[int, object]  # node id -> constant (float or vector)
    targets: Dict[str, int]
    _schedules: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)
    _use_counts: Dict[bytes, np.ndarray] = field(default_factory=dict)
    _parents: "Tuple[np.ndarray, np.ndarray] | None" = None
    _var_cones: Dict[int, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.kinds)

    def children(self, node_id: int) -> np.ndarray:
        return self.child_indices[
            self.child_offsets[node_id] : self.child_offsets[node_id + 1]
        ]

    def schedule(self, roots: Sequence[int]) -> np.ndarray:
        """Node ids reachable from ``roots``, in evaluation order.

        Node ids are already topological (children precede parents), so
        the schedule is the sorted reachable set.  Cached per root set —
        repeated bulk runs over the same targets pay for reachability
        once.
        """
        key = tuple(sorted(set(int(r) for r in roots)))
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        seen = np.zeros(len(self.kinds), dtype=bool)
        stack = list(key)
        while stack:
            node_id = stack.pop()
            if seen[node_id]:
                continue
            seen[node_id] = True
            stack.extend(int(c) for c in self.children(node_id))
        order = np.flatnonzero(seen)
        self._schedules[key] = order
        return order

    def parents(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR parent adjacency ``(offsets, indices)`` (cached).

        Parents of node ``i`` are ``indices[offsets[i]:offsets[i + 1]]``.
        """
        if self._parents is None:
            count = len(self.kinds)
            degrees = np.bincount(self.child_indices, minlength=count)
            offsets = np.zeros(count + 1, dtype=np.int64)
            np.cumsum(degrees, out=offsets[1:])
            indices = np.empty(len(self.child_indices), dtype=np.int64)
            cursor = offsets[:-1].copy()
            for node_id in range(count):
                for child in self.children(node_id):
                    indices[cursor[child]] = node_id
                    cursor[child] += 1
            self._parents = (offsets, indices)
        return self._parents

    def var_cone(self, var_index: int) -> np.ndarray:
        """Node ids downstream of variable ``var_index``, in topo order.

        The *cone* is the set of nodes whose value can change when the
        variable is assigned — the VAR node(s) carrying the index plus
        everything reachable upwards through the parent adjacency.
        Cached per variable: the masked evaluator re-sweeps exactly this
        suffix of the topological order on every ``push``, and the
        cone-aware variable ordering scores each unassigned variable by
        intersecting this set with the unresolved part of the mask
        (:class:`repro.compile.ordering.ConeInfluenceOrder`).
        """
        cached = self._var_cones.get(var_index)
        if cached is not None:
            return cached
        cone = _upward_closure(self, var_index)
        self._var_cones[var_index] = cone
        return cone

    def use_counts(self, order: np.ndarray) -> np.ndarray:
        """How many scheduled parents consume each node (for freeing).

        Cached per schedule (evaluators decrement the counts in place,
        so a fresh copy is returned each call).
        """
        key = order.tobytes()
        counts = self._use_counts.get(key)
        if counts is None:
            counts = np.zeros(len(self.kinds), dtype=np.int64)
            for node_id in order:
                for child in self.children(int(node_id)):
                    counts[child] += 1
            self._use_counts[key] = counts
        return counts.copy()


@dataclass
class FoldedFlatIR:
    """A folded network flattened for iteration-swept bulk evaluation.

    ``flat`` holds the whole template as a :class:`FlatNetwork` (loop
    inputs included); the extra columns bind each loop-input node to its
    slot.  Evaluators run the loop-independent *prefix* once, then sweep
    the loop-dependent *layer* ``iterations`` times, feeding each slot's
    loop-input node the value its *next* node produced in the previous
    sweep (its *init* node's value for the first sweep) — the matrix form
    of the per-iteration mask ``M[t][v]`` of Section 4.2.
    """

    flat: FlatNetwork
    iterations: int
    slot_names: Tuple[str, ...]
    loop_in_ids: np.ndarray  # (S,) int64 — loop-input node per slot
    init_ids: np.ndarray  # (S,) int64 — initial-value node per slot
    next_ids: np.ndarray  # (S,) int64 — iteration-update node per slot
    loop_slot: np.ndarray  # (N,) int64 — slot index of LOOP_IN nodes, else -1
    loop_dependent: np.ndarray  # (N,) bool — value can change across iterations
    # True when some slot is initialised from a loop-dependent node (a
    # cross-slot init chain): the first iteration then needs the
    # demand-driven evaluation order of the scalar evaluator instead of
    # the plain topological layer sweep.
    has_loop_dependent_init: bool = False
    _splits: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    _var_cones: Dict[int, np.ndarray] = field(default_factory=dict)

    def var_cone(self, var_index: int) -> np.ndarray:
        """Node ids affected by variable ``var_index``, in topo order.

        Like :meth:`FlatNetwork.var_cone`, but the closure also follows
        the implicit loop edges: when a slot's *init* or *next* node is
        in the cone, the slot's loop-input node (and hence its own
        parents) joins it too.
        """
        cached = self._var_cones.get(var_index)
        if cached is not None:
            return cached
        # Which loop inputs does each node feed (as an init/next node)?
        feeds: Dict[int, List[int]] = {}
        for slot in range(len(self.loop_in_ids)):
            feeds.setdefault(int(self.init_ids[slot]), []).append(
                int(self.loop_in_ids[slot])
            )
            feeds.setdefault(int(self.next_ids[slot]), []).append(
                int(self.loop_in_ids[slot])
            )
        cone = _upward_closure(self.flat, var_index, extra_edges=feeds)
        self._var_cones[var_index] = cone
        return cone

    def split(self, roots: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """``(prefix, layer)`` schedules for evaluating ``roots``.

        Reachability follows the implicit loop edges (a loop input needs
        its slot's init and next nodes); both schedules are in node-id
        (topological) order.  Cached per root set.
        """
        key = tuple(sorted(set(int(r) for r in roots)))
        cached = self._splits.get(key)
        if cached is not None:
            return cached
        seen = np.zeros(len(self.flat), dtype=bool)
        stack = list(key)
        while stack:
            node_id = stack.pop()
            if seen[node_id]:
                continue
            seen[node_id] = True
            stack.extend(int(c) for c in self.flat.children(node_id))
            slot = int(self.loop_slot[node_id])
            if slot >= 0:
                stack.append(int(self.init_ids[slot]))
                stack.append(int(self.next_ids[slot]))
        reachable = np.flatnonzero(seen)
        dependent = self.loop_dependent[reachable]
        prefix_layer = (reachable[~dependent], reachable[dependent])
        self._splits[key] = prefix_layer
        return prefix_layer


def _upward_closure(
    flat: FlatNetwork,
    var_index: int,
    extra_edges: "Dict[int, List[int]] | None" = None,
) -> np.ndarray:
    """Nodes reachable upwards from a variable's VAR node(s), sorted.

    ``extra_edges`` adds implicit successors per node (the folded IR's
    init/next → loop-input edges) on top of the CSR parent adjacency.
    """
    offsets, indices = flat.parents()
    seen = np.zeros(len(flat.kinds), dtype=bool)
    stack = [int(n) for n in np.flatnonzero(flat.var_index == var_index)]
    while stack:
        node_id = stack.pop()
        if seen[node_id]:
            continue
        seen[node_id] = True
        stack.extend(
            int(p) for p in indices[offsets[node_id] : offsets[node_id + 1]]
        )
        if extra_edges is not None:
            stack.extend(extra_edges.get(node_id, ()))
    return np.flatnonzero(seen)


def supports_bulk(network: EventNetwork) -> bool:
    """Can this network be flattened for bulk evaluation?

    ``ValueError`` covers incomplete folded networks (unbound slots),
    which are no more evaluable than networks without a flat form.
    """
    try:
        if isinstance(network, FoldedNetwork):
            flatten_folded(network)
        else:
            flatten(network)
    except (UnsupportedNetworkError, ValueError):
        return False
    return True


def flatten(network: EventNetwork) -> FlatNetwork:
    """Flatten ``network`` (cached: repeated calls reuse the arrays).

    The cache is invalidated when the network grows (builders append
    nodes through the same object).
    """
    cached = getattr(network, "_flat_ir", None)
    if cached is not None and cached[0] == len(network.nodes):
        return cached[1]
    flat = _flatten_uncached(network)
    try:
        network._flat_ir = (len(network.nodes), flat)
    except AttributeError:  # pragma: no cover - exotic network subclasses
        pass
    return flat


def flatten_folded(network: FoldedNetwork) -> FoldedFlatIR:
    """Flatten a folded network (cached like :func:`flatten`).

    Requires every slot to be bound (``check_complete``).  The cache is
    invalidated when the network grows *or* when a slot is rebound
    (``define_slot`` clears it).
    """
    cached = getattr(network, "_folded_flat_ir", None)
    if cached is not None and cached[0] == len(network.nodes):
        return cached[1]
    network.check_complete()
    flat = _flatten_uncached(network, allow_loop_inputs=True)

    slot_names = tuple(network.slots)
    loop_in_ids = np.empty(len(slot_names), dtype=np.int64)
    init_ids = np.empty(len(slot_names), dtype=np.int64)
    next_ids = np.empty(len(slot_names), dtype=np.int64)
    loop_slot = np.full(len(network.nodes), -1, dtype=np.int64)
    for slot, name in enumerate(slot_names):
        loop_in, init_node, next_node = network.slots[name]
        loop_in_ids[slot] = loop_in
        init_ids[slot] = init_node
        next_ids[slot] = next_node
        loop_slot[loop_in] = slot

    dependent_ids = network.loop_dependent()
    loop_dependent = np.zeros(len(network.nodes), dtype=bool)
    loop_dependent[sorted(dependent_ids)] = True

    ir = FoldedFlatIR(
        flat=flat,
        iterations=network.iterations,
        slot_names=slot_names,
        loop_in_ids=loop_in_ids,
        init_ids=init_ids,
        next_ids=next_ids,
        loop_slot=loop_slot,
        loop_dependent=loop_dependent,
        has_loop_dependent_init=bool(loop_dependent[init_ids].any()),
    )
    try:
        network._folded_flat_ir = (len(network.nodes), ir)
    except AttributeError:  # pragma: no cover - exotic network subclasses
        pass
    return ir


def _flatten_uncached(
    network: EventNetwork, *, allow_loop_inputs: bool = False
) -> FlatNetwork:
    count = len(network.nodes)
    kinds = np.empty(count, dtype=np.int16)
    var_index = np.full(count, -1, dtype=np.int64)
    atom_op = np.full(count, -1, dtype=np.int8)
    pow_exponent = np.zeros(count, dtype=np.int64)
    dist_metric = np.full(count, -1, dtype=np.int8)
    guard_values: Dict[int, object] = {}
    offsets = np.zeros(count + 1, dtype=np.int64)
    child_lists: List[Tuple[int, ...]] = []

    for node in network.nodes:
        kind = node.kind
        if kind is Kind.LOOP_IN and not allow_loop_inputs:
            raise UnsupportedNetworkError(
                "folded networks (loop-input nodes) have no static flat "
                "form; flatten_folded() builds their iteration-swept IR"
            )
        kinds[node.id] = int(kind)
        child_lists.append(node.children)
        offsets[node.id + 1] = offsets[node.id] + len(node.children)
        for child in node.children:
            if child >= node.id:
                raise UnsupportedNetworkError(
                    "network node order is not topological"
                )
        if kind is Kind.VAR:
            var_index[node.id] = node.payload
        elif kind is Kind.ATOM:
            atom_op[node.id] = ATOM_OPS[node.payload]
        elif kind is Kind.POW:
            pow_exponent[node.id] = node.payload
        elif kind is Kind.DIST:
            dist_metric[node.id] = DIST_METRICS[node.payload]
        elif kind is Kind.GUARD:
            value = node.payload
            if isinstance(value, np.ndarray):
                guard_values[node.id] = np.asarray(value, dtype=float)
            else:
                guard_values[node.id] = float(value)

    child_indices = np.fromiter(
        (c for children in child_lists for c in children),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return FlatNetwork(
        kinds=kinds,
        child_offsets=offsets,
        child_indices=child_indices,
        var_index=var_index,
        atom_op=atom_op,
        pow_exponent=pow_exponent,
        dist_metric=dist_metric,
        guard_values=guard_values,
        targets=dict(network.targets),
    )
