"""Vectorized bulk-world evaluation of event networks.

Where the scalar baselines evaluate the network once per valuation (one
recursive Python traversal per world), the bulk evaluator sweeps the
flattened network (:mod:`repro.engine.ir`) once, carrying *all* worlds
of a batch simultaneously: Boolean nodes become ``(W,)`` bool arrays,
numeric nodes become a ``(defined mask, value array)`` pair.  The
semantics mirror the scalar evaluators exactly on total valuations —
``u`` is the identity of addition, annihilates multiplication, makes
atoms true — so results match the oracles bit-for-bit up to summation
order.

Two entry points replace the hot loops of the baselines:

* :func:`bulk_naive_probabilities` — exact probabilities by enumerating
  all ``2^|X|`` worlds in chunks (the paper's naive per-world baseline);
* :func:`bulk_monte_carlo_probabilities` — the MCDB-style statistical
  comparator, sampling whole batches of worlds at once.
"""

from __future__ import annotations

import math
import time
from collections import ChainMap
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compile.result import CompilationResult
from ..network.folded import FoldedNetwork
from ..network.nodes import EventNetwork, Kind
from ..worlds.variables import VariablePool
from .ir import (
    FlatNetwork,
    FoldedFlatIR,
    UnsupportedNetworkError,
    flatten,
    flatten_folded,
)

_K_TRUE = int(Kind.TRUE)
_K_FALSE = int(Kind.FALSE)
_K_VAR = int(Kind.VAR)
_K_NOT = int(Kind.NOT)
_K_AND = int(Kind.AND)
_K_OR = int(Kind.OR)
_K_ATOM = int(Kind.ATOM)
_K_GUARD = int(Kind.GUARD)
_K_COND = int(Kind.COND)
_K_SUM = int(Kind.SUM)
_K_PROD = int(Kind.PROD)
_K_INV = int(Kind.INV)
_K_POW = int(Kind.POW)
_K_DIST = int(Kind.DIST)

# Worlds processed per batch by the enumerating/sampling drivers; bounds
# peak memory at (live nodes) x chunk x dimension floats.
DEFAULT_CHUNK = 1 << 14


class _Num:
    """Per-batch numeric state: a defined mask plus the defined values.

    ``value`` rows where ``defined`` is false hold arbitrary *finite*
    numbers — every producer fills masked-out slots with a safe constant
    so downstream arithmetic never trips on inf/nan.
    """

    __slots__ = ("defined", "value")

    def __init__(self, defined: np.ndarray, value: np.ndarray) -> None:
        self.defined = defined
        self.value = value

    def mask(self) -> np.ndarray:
        """``defined`` broadcast to the shape of ``value``."""
        extra = self.value.ndim - 1
        if extra == 0:
            return self.defined
        return self.defined.reshape(self.defined.shape + (1,) * extra)


def _compare(op_code: int, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op_code == 0:
        holds = left <= right
    elif op_code == 1:
        holds = left < right
    elif op_code == 2:
        holds = left >= right
    elif op_code == 3:
        holds = left > right
    else:
        holds = left == right
    if holds.ndim > 1:
        # Vector comparisons hold when every component does (matching the
        # point-interval semantics of the partial evaluator).
        holds = holds.reshape(holds.shape[0], -1).all(axis=1)
    return holds


class BulkEvaluator:
    """Evaluates network nodes over a whole batch of total valuations."""

    def __init__(self, network: EventNetwork) -> None:
        self.network = network
        self.flat: FlatNetwork = flatten(network)

    # ------------------------------------------------------------------

    def evaluate(
        self, assignments: np.ndarray, node_ids: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Boolean outcomes of ``node_ids`` in every world of the batch.

        ``assignments`` is a ``(W, |X|)`` bool matrix: row ``w`` is the
        total valuation of world ``w``.  Returns ``{node_id: (W,) bool}``
        for the requested (Boolean) nodes.
        """
        flat = self.flat
        roots = [int(node_id) for node_id in node_ids]
        order = flat.schedule(roots)
        remaining = flat.use_counts(order)
        keep = set(roots)
        worlds = assignments.shape[0]
        values: Dict[int, object] = {}

        for raw_id in order:
            node_id = int(raw_id)
            kind = int(flat.kinds[node_id])
            children = flat.children(node_id)
            values[node_id] = self._compute(
                kind, node_id, children, values, assignments, worlds
            )
            for raw_child in children:
                child = int(raw_child)
                remaining[child] -= 1
                if remaining[child] == 0 and child not in keep:
                    del values[child]

        return {node_id: values[node_id] for node_id in roots}

    # ------------------------------------------------------------------

    def _compute(
        self,
        kind: int,
        node_id: int,
        children: np.ndarray,
        values: Dict[int, object],
        assignments: np.ndarray,
        worlds: int,
    ):
        flat = self.flat
        if kind == _K_VAR:
            return assignments[:, flat.var_index[node_id]]
        if kind == _K_TRUE:
            return np.ones(worlds, dtype=bool)
        if kind == _K_FALSE:
            return np.zeros(worlds, dtype=bool)
        if kind == _K_NOT:
            return ~values[int(children[0])]
        if kind == _K_AND:
            result = np.ones(worlds, dtype=bool)
            for child in children:
                result = result & values[int(child)]
            return result
        if kind == _K_OR:
            result = np.zeros(worlds, dtype=bool)
            for child in children:
                result = result | values[int(child)]
            return result
        if kind == _K_ATOM:
            left: _Num = values[int(children[0])]
            right: _Num = values[int(children[1])]
            holds = _compare(int(flat.atom_op[node_id]), left.value, right.value)
            # Atoms are true whenever either side is undefined.
            return holds | ~left.defined | ~right.defined
        if kind == _K_GUARD:
            event = values[int(children[0])]
            constant = np.asarray(flat.guard_values[node_id], dtype=float)
            value = np.broadcast_to(constant, (worlds,) + constant.shape)
            return _Num(event, value)
        if kind == _K_COND:
            event = values[int(children[0])]
            child: _Num = values[int(children[1])]
            return _Num(event & child.defined, child.value)
        if kind == _K_SUM:
            defined = np.zeros(worlds, dtype=bool)
            total = None
            for raw_child in children:
                term: _Num = values[int(raw_child)]
                defined = defined | term.defined
                contribution = np.where(term.mask(), term.value, 0.0)
                total = contribution if total is None else total + contribution
            if total is None:  # empty sum: undefined everywhere
                return _Num(defined, np.zeros(worlds))
            return _Num(defined, total)
        if kind == _K_PROD:
            defined = np.ones(worlds, dtype=bool)
            product = None
            for raw_child in children:
                factor: _Num = values[int(raw_child)]
                defined = defined & factor.defined
                product = (
                    factor.value if product is None else product * factor.value
                )
            if product is None:  # empty product is 1
                return _Num(defined, np.ones(worlds))
            return _Num(defined, product)
        if kind == _K_INV:
            child = values[int(children[0])]
            if child.value.ndim > 1:
                raise TypeError("invert is only defined for scalar c-values")
            nonzero = child.value != 0.0
            defined = child.defined & nonzero
            value = np.divide(
                1.0,
                child.value,
                out=np.ones(worlds),
                where=nonzero,
            )
            return _Num(defined, value)
        if kind == _K_POW:
            child = values[int(children[0])]
            exponent = int(flat.pow_exponent[node_id])
            if exponent >= 0:
                return _Num(child.defined, child.value**exponent)
            if child.value.ndim > 1:
                raise TypeError("invert is only defined for scalar c-values")
            nonzero = child.value != 0.0
            powered = np.where(nonzero, child.value, 1.0) ** (-exponent)
            return _Num(child.defined & nonzero, 1.0 / powered)
        if kind == _K_DIST:
            left = values[int(children[0])]
            right = values[int(children[1])]
            diff = np.abs(left.value - right.value)
            metric = int(flat.dist_metric[node_id])
            if diff.ndim == 1:
                components = diff.reshape(worlds, 1)
            else:
                components = diff.reshape(worlds, -1)
            if metric == 0:  # euclidean
                value = np.sqrt(np.sum(components**2, axis=1))
            elif metric == 1:  # sqeuclidean
                value = np.sum(components**2, axis=1)
            else:  # manhattan
                value = np.sum(components, axis=1)
            return _Num(left.defined & right.defined, value)
        raise TypeError(f"cannot bulk-evaluate node kind {Kind(kind)!r}")


class FoldedBulkEvaluator(BulkEvaluator):
    """Bulk evaluation of folded networks: one layer sweep per iteration.

    The loop-independent prefix is evaluated once per batch; the
    loop-dependent layer is then swept ``iterations`` times as whole
    boolean/float matrices, with each slot's loop-input node fed the
    value its *next* node produced in the previous sweep (the *init*
    node's value for the first sweep).  Node values read at the end
    match the scalar :class:`repro.compile.folded_eval.FoldedEvaluator`
    at the final iteration.  Folded layers are small by construction
    (the whole point of the encoding), so no mid-sweep freeing is done.

    Only the slots reachable from the requested roots are carried:
    unreachable slots get no state column and are never read, so
    evaluating a subset of targets on a multi-slot network is safe.
    """

    def __init__(self, network: FoldedNetwork) -> None:
        self.network = network
        self.ir: FoldedFlatIR = flatten_folded(network)
        self.flat = self.ir.flat

    def evaluate(
        self, assignments: np.ndarray, node_ids: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        ir = self.ir
        roots = [int(node_id) for node_id in node_ids]
        prefix, layer = ir.split(roots)
        worlds = assignments.shape[0]

        prefix_values: Dict[int, object] = {}
        for raw_id in prefix:
            node_id = int(raw_id)
            prefix_values[node_id] = self._compute(
                int(self.flat.kinds[node_id]),
                node_id,
                self.flat.children(node_id),
                prefix_values,
                assignments,
                worlds,
            )

        layer_ids = [int(raw_id) for raw_id in layer]
        layer_values: Dict[int, object] = {}
        values = ChainMap(layer_values, prefix_values)
        if ir.has_loop_dependent_init:
            # Cross-slot init chains: the first iteration needs the
            # demand-driven order of the scalar evaluator (a loop input
            # at iteration 0 is its slot's init *at iteration 0*).
            self._first_sweep_demand_driven(
                layer_ids, layer_values, values, assignments, worlds
            )
        else:
            # Every init is loop-independent, i.e. already in the prefix
            # (``.get``: slots unreachable from the roots have no value
            # and no reader).
            state = [prefix_values.get(int(i)) for i in ir.init_ids]
            self._sweep(layer_ids, state, layer_values, values, assignments, worlds)
        for _ in range(ir.iterations - 1):
            state = [values.get(int(n)) for n in ir.next_ids]
            self._sweep(layer_ids, state, layer_values, values, assignments, worlds)

        return {node_id: values[node_id] for node_id in roots}

    def _sweep(
        self,
        layer_ids: List[int],
        state: List[object],
        layer_values: Dict[int, object],
        values: "ChainMap",
        assignments: np.ndarray,
        worlds: int,
    ) -> None:
        """One iteration: recompute the loop layer from the slot state."""
        flat = self.flat
        loop_slot = self.ir.loop_slot
        layer_values.clear()
        for node_id in layer_ids:
            slot = int(loop_slot[node_id])
            if slot >= 0:
                layer_values[node_id] = state[slot]
                continue
            layer_values[node_id] = self._compute(
                int(flat.kinds[node_id]),
                node_id,
                flat.children(node_id),
                values,
                assignments,
                worlds,
            )

    def _first_sweep_demand_driven(
        self,
        layer_ids: List[int],
        layer_values: Dict[int, object],
        values: "ChainMap",
        assignments: np.ndarray,
        worlds: int,
    ) -> None:
        """Iteration 0 with loop inputs resolving through their inits.

        Demand order is kept with an explicit two-phase stack (visit
        children, then compute) — cross-slot init chains can be as deep
        as the slot count, so the recursion limit must not bound them.
        """
        flat = self.flat
        ir = self.ir
        in_progress: set = set()

        layer_values.clear()
        for root in layer_ids:
            stack: List[Tuple[int, int]] = [(int(root), 0)]
            while stack:
                node_id, phase = stack.pop()
                if phase == 0:
                    if values.get(node_id) is not None:
                        continue
                    if node_id in in_progress:
                        raise UnsupportedNetworkError(
                            "cyclic slot initialisation in folded network"
                        )
                    in_progress.add(node_id)
                    stack.append((node_id, 1))
                    slot = int(ir.loop_slot[node_id])
                    if slot >= 0:
                        stack.append((int(ir.init_ids[slot]), 0))
                    else:
                        for child in flat.children(node_id):
                            stack.append((int(child), 0))
                    continue
                slot = int(ir.loop_slot[node_id])
                if slot >= 0:
                    result = values[int(ir.init_ids[slot])]
                else:
                    result = self._compute(
                        int(flat.kinds[node_id]),
                        node_id,
                        flat.children(node_id),
                        values,
                        assignments,
                        worlds,
                    )
                in_progress.discard(node_id)
                layer_values[node_id] = result


def make_bulk_evaluator(
    network: EventNetwork,
    packed: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> BulkEvaluator:
    """Evaluator matching the network flavour (flat or folded).

    ``packed`` selects the bit-packed Boolean world columns
    (:mod:`repro.engine.packed`): 64 worlds per ``uint64`` word, with
    pack/unpack only at the numeric boundary.  The default (``None``)
    enables packing — the packed evaluators are drop-in equal on
    Boolean outputs and share the numeric path bit-for-bit; pass
    ``packed=False`` to force the original one-bool-per-world columns.
    ``kernel`` names the segment-kernel tier for the flat packed
    evaluator (``"auto"``/``"numba"``/``"native"``/``"python"``, see
    :mod:`repro.engine.kernels`).
    """
    if packed is None:
        packed = True
    if isinstance(network, FoldedNetwork):
        if packed:
            from .packed import PackedFoldedBulkEvaluator

            return PackedFoldedBulkEvaluator(network)
        return FoldedBulkEvaluator(network)
    if packed:
        from .packed import PackedBulkEvaluator

        return PackedBulkEvaluator(network, kernel=kernel)
    return BulkEvaluator(network)


# ----------------------------------------------------------------------
# World-batch construction
# ----------------------------------------------------------------------


def enumerate_worlds(
    variable_count: int, start: int, stop: int
) -> np.ndarray:
    """Assignment rows for world indices ``[start, stop)``.

    The enumeration order matches
    :meth:`repro.worlds.variables.VariablePool.iter_valuations`:
    world 0 assigns every variable true and the last variable flips
    fastest.

    World indices are arbitrary-precision Python integers — networks
    with 64+ variables index worlds far past the int64 range — so the
    bit extraction is chunked: within a run between two multiples of
    ``2**62`` the high bits are one constant Python int (broadcast per
    column) while the low 62 bits vary and are extracted vectorized.
    """
    start, stop = int(start), int(stop)
    count = max(stop - start, 0)
    if variable_count == 0:
        return np.zeros((count, 0), dtype=bool)
    low_bits = 62
    if stop <= (1 << low_bits):
        # Fast path: every index fits in int64.  Columns whose shift
        # would reach past the index range read bit 0, i.e. "true" —
        # shifting an int64 by >= 64 is undefined, not zero.
        indices = np.arange(start, stop, dtype=np.int64)
        effective = min(variable_count, low_bits)
        shifts = np.arange(effective - 1, -1, -1, dtype=np.int64)
        bits = (indices[:, None] >> shifts[None, :]) & 1
        if effective == variable_count:
            return bits == 0
        result = np.ones((count, variable_count), dtype=bool)
        result[:, variable_count - effective :] = bits == 0
        return result
    result = np.empty((count, variable_count), dtype=bool)
    low_mask = (1 << low_bits) - 1
    row = 0
    cursor = start
    while cursor < stop:
        high = cursor >> low_bits
        run_stop = min(stop, (high + 1) << low_bits)
        low = np.arange(
            cursor & low_mask,
            (cursor & low_mask) + (run_stop - cursor),
            dtype=np.int64,
        )
        block = result[row : row + len(low)]
        for column in range(variable_count):
            shift = variable_count - 1 - column
            if shift >= low_bits:
                block[:, column] = ((high >> (shift - low_bits)) & 1) == 0
            else:
                block[:, column] = ((low >> np.int64(shift)) & 1) == 0
        row += len(low)
        cursor = run_stop
    return result


def world_masses(assignments: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """``Pr(nu)`` of each assignment row under variable independence."""
    worlds = assignments.shape[0]
    mass = np.ones(worlds)
    # Multiply variable by variable, mirroring the scalar product order so
    # the per-world rounding matches the oracle exactly.
    for index in range(assignments.shape[1]):
        p_true = probabilities[index]
        mass = mass * np.where(assignments[:, index], p_true, 1.0 - p_true)
    return mass


# ----------------------------------------------------------------------
# Scheme drivers
# ----------------------------------------------------------------------


def bulk_naive_probabilities(
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]] = None,
    world_key_nodes: Optional[Sequence[int]] = None,
    timeout: Optional[float] = None,
    chunk_size: int = DEFAULT_CHUNK,
    packed: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> CompilationResult:
    """Exact target probabilities by vectorized world enumeration.

    Drop-in replacement for the scalar
    :func:`repro.worlds.naive.naive_probabilities_scalar`: same bounds,
    counters, ``world_key_nodes`` world accounting, and timeout
    semantics (partial sums with ``extra['timed_out'] = 1``), but whole
    chunks of worlds are evaluated per network sweep.  ``packed`` /
    ``kernel`` select the column representation and kernel tier (see
    :func:`make_bulk_evaluator`).
    """
    names = list(targets) if targets is not None else list(network.targets)
    target_ids = [network.targets[name] for name in names]
    key_ids = list(world_key_nodes) if world_key_nodes is not None else []
    evaluator = make_bulk_evaluator(network, packed=packed, kernel=kernel)
    probabilities = np.asarray(pool.probabilities, dtype=float)
    variable_count = len(pool)
    world_count = 1 << variable_count

    totals = {name: 0.0 for name in names}
    signatures: set = set()
    worlds_evaluated = 0
    timed_out = False

    started = time.perf_counter()
    for chunk_start in range(0, world_count, chunk_size):
        if timeout is not None and time.perf_counter() - started > timeout:
            timed_out = True
            break
        chunk_stop = min(chunk_start + chunk_size, world_count)
        assignments = enumerate_worlds(variable_count, chunk_start, chunk_stop)
        mass = world_masses(assignments, probabilities)
        worlds_evaluated += int(np.count_nonzero(mass != 0.0))
        outcomes = evaluator.evaluate(assignments, target_ids + key_ids)
        for name, target_id in zip(names, target_ids):
            totals[name] += float(mass @ outcomes[target_id])
        if key_ids:
            live = mass != 0.0
            signature_matrix = np.column_stack(
                [outcomes[key_id] for key_id in key_ids]
            )[live]
            packed = np.packbits(signature_matrix, axis=1)
            signatures.update(row.tobytes() for row in packed)
    elapsed = time.perf_counter() - started

    bounds = {
        name: (totals[name], totals[name] if not timed_out else 1.0)
        for name in names
    }
    result = CompilationResult(
        bounds=bounds,
        scheme="naive",
        epsilon=0.0,
        seconds=elapsed,
        tree_nodes=worlds_evaluated,
    )
    result.extra["distinct_worlds"] = (
        float(len(signatures)) if signatures else float(worlds_evaluated)
    )
    result.extra["timed_out"] = 1.0 if timed_out else 0.0
    result.extra["vectorized"] = 1.0
    result.extra["packed"] = 1.0 if getattr(evaluator, "packed", False) else 0.0
    return result


def bulk_monte_carlo_probabilities(
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]] = None,
    samples: int = 1000,
    seed: int = 0,
    confidence: float = 0.95,
    chunk_size: int = DEFAULT_CHUNK,
    packed: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> CompilationResult:
    """Vectorized MCDB-style estimation: sample worlds in whole batches.

    Statistically equivalent to the scalar comparator (same Wald
    intervals, deterministic per seed) but draws its samples from a
    NumPy generator, so per-seed streams differ from the scalar path.
    """
    from ..compile.montecarlo import z_score

    if samples < 1:
        raise ValueError("need at least one sample")
    z = z_score(confidence)  # validates the confidence level
    names = list(targets) if targets is not None else list(network.targets)
    target_ids = [network.targets[name] for name in names]
    evaluator = make_bulk_evaluator(network, packed=packed, kernel=kernel)
    probabilities = np.asarray(pool.probabilities, dtype=float)
    rng = np.random.default_rng(seed)
    hits = {name: 0 for name in names}

    started = time.perf_counter()
    drawn = 0
    while drawn < samples:
        batch = min(chunk_size, samples - drawn)
        assignments = rng.random((batch, len(pool))) < probabilities
        outcomes = evaluator.evaluate(assignments, target_ids)
        for name, target_id in zip(names, target_ids):
            hits[name] += int(np.count_nonzero(outcomes[target_id]))
        drawn += batch
    elapsed = time.perf_counter() - started

    bounds: Dict[str, Tuple[float, float]] = {}
    for name in names:
        frequency = hits[name] / samples
        margin = z * math.sqrt(max(frequency * (1 - frequency), 1e-12) / samples)
        bounds[name] = (
            max(0.0, frequency - margin),
            min(1.0, frequency + margin),
        )
    result = CompilationResult(
        bounds=bounds,
        scheme="montecarlo",
        epsilon=0.0,
        seconds=elapsed,
        tree_nodes=samples,
    )
    result.extra["samples"] = float(samples)
    result.extra["confidence"] = confidence
    result.extra["vectorized"] = 1.0
    result.extra["packed"] = 1.0 if getattr(evaluator, "packed", False) else 0.0
    return result
