"""The unified evaluation-engine layer.

Three pieces compose into one substrate shared by every probability
computation scheme:

* :mod:`repro.engine.ir` — flattens an event network once into
  topologically-ordered NumPy arrays (kind codes, CSR operand tables,
  constants), cached per network;
* :mod:`repro.engine.bulk` — evaluates every compilation target over
  *all* possible worlds (or all Monte Carlo samples) simultaneously as
  Boolean/float matrices, replacing per-valuation recursion;
* :mod:`repro.engine.masked` — the Shannon compiler's partial-evaluation
  abstraction as columns over the flat IR, with per-variable cone
  recomputation on ``push`` and trailed column restores on ``pop``;
* :mod:`repro.engine.registry` — the scheme registry through which the
  platform facade, the CLI, the distributed compiler, and the benchmark
  harness all dispatch; schemes declare capabilities (epsilon-aware,
  statistical-bounds, distributed-capable) so new workloads plug in
  without touching the callers.
"""

from .bulk import (
    BulkEvaluator,
    FoldedBulkEvaluator,
    bulk_monte_carlo_probabilities,
    bulk_naive_probabilities,
    make_bulk_evaluator,
)
from .ir import (
    FlatNetwork,
    FoldedFlatIR,
    UnsupportedNetworkError,
    flatten,
    flatten_folded,
    supports_bulk,
)
from .masked import MaskedEvaluator, MaskedProgram, masked_program
from .registry import (
    CAP_BULK,
    CAP_DISTRIBUTED,
    CAP_EPSILON,
    CAP_EXACT,
    CAP_STATISTICAL,
    CAP_TIMEOUT,
    SchemeOptions,
    SchemeSpec,
    available_schemes,
    get_scheme,
    has_capability,
    register_scheme,
    reset_registry,
    run_scheme,
    unregister_scheme,
)

__all__ = [
    "BulkEvaluator",
    "FoldedBulkEvaluator",
    "FoldedFlatIR",
    "CAP_BULK",
    "CAP_DISTRIBUTED",
    "CAP_EPSILON",
    "CAP_EXACT",
    "CAP_STATISTICAL",
    "CAP_TIMEOUT",
    "FlatNetwork",
    "MaskedEvaluator",
    "MaskedProgram",
    "SchemeOptions",
    "SchemeSpec",
    "UnsupportedNetworkError",
    "masked_program",
    "available_schemes",
    "bulk_monte_carlo_probabilities",
    "bulk_naive_probabilities",
    "flatten",
    "flatten_folded",
    "get_scheme",
    "has_capability",
    "make_bulk_evaluator",
    "register_scheme",
    "reset_registry",
    "run_scheme",
    "supports_bulk",
    "unregister_scheme",
]
