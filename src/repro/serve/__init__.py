"""The service layer: a long-running batched query front-end.

``repro serve`` turns the platform into a network service: an asyncio
HTTP/JSON server (:mod:`repro.serve.server`) with admission control
and request batching (:mod:`repro.serve.batching`) over a
content-addressed compiled-artifact cache (:mod:`repro.serve.cache`).
All probability computation dispatches through
:mod:`repro.engine.registry`, so every registered scheme is servable.
"""

from .batching import BatchingExecutor, QueryJob
from .cache import Artifact, ArtifactCache, DEFAULT_CACHE_BYTES
from .client import ServeClient, ServeClientError
from .server import ReproServer, ServeError, ServerThread

__all__ = [
    "Artifact",
    "ArtifactCache",
    "BatchingExecutor",
    "DEFAULT_CACHE_BYTES",
    "QueryJob",
    "ReproServer",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServerThread",
]
