"""A small blocking client for the ``repro serve`` HTTP/JSON API.

Stdlib-only (``http.client``), one connection per exchange (the server
answers ``Connection: close``).  Used by the differential test
harness, the service benchmark, and the CI smoke job — and usable from
application code that wants typed errors instead of raw HTTP.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Tuple

from ..network.nodes import EventNetwork
from ..network.serialize import network_to_dict, pool_to_dict
from ..worlds.variables import VariablePool


class ServeClientError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Blocking client bound to one ``repro serve`` endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        """One HTTP exchange; raises :class:`ServeClientError` on non-2xx."""
        status, document = self.raw_request(method, path, payload)
        if status >= 300:
            raise ServeClientError(
                status, str(document.get("error", document))
            )
        return document

    def raw_request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            document = json.loads(raw) if raw else {}
            return response.status, document
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def schemes(self) -> Dict[str, List[str]]:
        return self.request("GET", "/schemes")["schemes"]

    def put_network(
        self, name: str, network: EventNetwork, pool: VariablePool
    ) -> dict:
        document = {
            "network": network_to_dict(network),
            "pool": pool_to_dict(pool),
        }
        return self.put_network_document(name, document)

    def put_network_document(self, name: str, document: dict) -> dict:
        return self.request("PUT", f"/networks/{name}", document)

    def delete_network(self, name: str) -> dict:
        return self.request("DELETE", f"/networks/{name}")

    def rename_network(self, name: str, new_name: str) -> dict:
        return self.request(
            "POST", f"/networks/{name}/rename", {"to": new_name}
        )

    def query(self, network: str, **options) -> dict:
        """One probability query; keyword options mirror the JSON API
        (``scheme``, ``targets``, ``epsilon``, ``ordering``, ``kernel``,
        ``samples``, ``seed``, ``confidence``, ``workers``,
        ``evidence``, ...)."""
        payload = {"network": network}
        payload.update(options)
        return self.request("POST", "/query", payload)

    def condition(self, network: str, **options) -> dict:
        """A conditional query (defaults to the ``exact-cond`` scheme);
        pass ``evidence=[...]`` and/or rely on sticky evidence set via
        :meth:`put_evidence`."""
        payload = {"network": network}
        payload.update(options)
        return self.request("POST", "/condition", payload)

    def put_evidence(self, network: str, evidence) -> dict:
        """Attach sticky evidence to a registered network; it is merged
        into every subsequent query against that network."""
        return self.request(
            "PUT", f"/networks/{network}/evidence", {"evidence": list(evidence)}
        )

    def delete_evidence(self, network: str) -> dict:
        return self.request("DELETE", f"/networks/{network}/evidence")

    def shutdown(self, drain_timeout: float = 5.0) -> dict:
        return self.request(
            "POST", "/shutdown", {"drain_timeout": drain_timeout}
        )
