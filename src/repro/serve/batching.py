"""Admission control and request batching for the query service.

Production traffic hits the same event networks and targets over and
over, which is exactly the access pattern a batching barrier exploits:
concurrent queries that agree on (network, scheme, normalised options)
are *coalesced* into one engine pass instead of N.  The rules are
capability-driven:

* ``bulk``-capable schemes (``naive``, ``montecarlo``) evaluate all
  targets × all worlds in one sweep, and their per-target answers are
  independent of which other targets ride along (Monte Carlo draws its
  sample worlds from the seed before looking at any target), so
  requests may differ in *targets*: the pass runs the union and each
  request is answered from its slice — bit-identical to a direct
  single-request run.
* Every other scheme (the Shannon family compiles a decision tree
  *for* its target set) coalesces only requests with an identical
  target set, which is precisely the repeated-query case the service
  exists for.

The executor runs one engine pass at a time on a worker thread (the
asyncio loop stays free to accept, queue, and time out), pulls
everything waiting off the queue between passes, and bounds the queue
with an admission cap — beyond it, requests are rejected immediately
(HTTP 503) instead of building unbounded latency.  A pass that raises
fails *only its own group*: peers in the same batch still answer.

Every response reports ``batched_into`` (requests coalesced into its
group), ``cache`` (``hit`` — answered from the artifact cache without
a pass; ``miss`` — a pass ran over an already-materialized network;
``cold`` — the pass also had to materialize the network), and
``queue_wait_seconds``.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..engine.registry import run_scheme
from .cache import ArtifactCache


class QueueFull(Exception):
    """Admission control rejected the request (queue at capacity)."""


class ShuttingDown(Exception):
    """The service is draining; no new work is admitted."""


class ComputeError(Exception):
    """The engine pass for this request's group raised."""


@dataclass(eq=False)
class QueryJob:
    """One admitted query, prepared for grouping and caching.

    ``materialize`` resolves the network/pool objects at pass time (the
    server wires it to the compiled-artifact layer); it returns
    ``(network, pool, cold)`` where ``cold`` records whether the
    network had to be deserialised because no compiled artifact was
    resident.
    """

    scheme: str
    targets: Tuple[str, ...]
    network_hash: str
    group_key: str
    cache_key: str
    run_kwargs: Dict[str, object]
    materialize: Callable[[], Tuple[object, object, bool]]
    future: "asyncio.Future[dict]" = field(repr=False, default=None)
    enqueued_at: float = 0.0
    queue_wait: float = 0.0


class BatchingExecutor:
    """The admission queue plus the single-consumer batch loop."""

    def __init__(
        self,
        cache: ArtifactCache,
        max_batch: int = 32,
        max_pending: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.cache = cache
        self.max_batch = max_batch
        self.max_pending = max_pending
        self._queue: "asyncio.Queue[Optional[QueryJob]]" = asyncio.Queue()
        self._outstanding: set = set()
        self._consumer: Optional[asyncio.Task] = None
        self._draining = False
        # Instrumented counters: the coalescing tests assert
        # passes < requests directly against these.
        self.requests = 0
        self.passes = 0
        self.batches = 0
        self.rejected = 0
        self.abandoned = 0
        self.failed = 0

    @property
    def pending(self) -> int:
        """Requests admitted but not yet answered (queued or in-pass)."""
        return len(self._outstanding)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._consumer is None:
            self._consumer = asyncio.get_running_loop().create_task(
                self._consume()
            )

    async def shutdown(self, drain_timeout: float = 5.0) -> Dict[str, float]:
        """Drain the queue (bounded by ``drain_timeout``) and stop.

        Mirrors the distributed compiler's ``workers_killed``
        discipline: work that cannot be drained inside the deadline is
        *reported*, not silently discarded — every abandoned request
        gets a 503 response and shows up in ``requests_abandoned``.
        """
        self._draining = True
        deadline = time.perf_counter() + max(0.0, drain_timeout)
        while self._outstanding and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        abandoned = 0
        for job in tuple(self._outstanding):
            if job.future is not None and not job.future.done():
                job.future.set_exception(
                    ShuttingDown("server shutting down before this request ran")
                )
                abandoned += 1
        self._outstanding.clear()
        self.abandoned += abandoned
        if self._consumer is not None:
            await self._queue.put(None)
            try:
                await asyncio.wait_for(self._consumer, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._consumer.cancel()
            self._consumer = None
        return {
            "drained": 0.0 if abandoned else 1.0,
            "requests_abandoned": float(abandoned),
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    async def submit(self, job: QueryJob) -> dict:
        """Admit one job and await its response payload."""
        if self._draining:
            raise ShuttingDown("server is shutting down")
        if len(self._outstanding) >= self.max_pending:
            self.rejected += 1
            raise QueueFull(
                f"admission queue full ({self.max_pending} requests pending)"
            )
        self.requests += 1
        job.future = asyncio.get_running_loop().create_future()
        job.enqueued_at = time.perf_counter()
        self._outstanding.add(job)
        await self._queue.put(job)
        try:
            return await job.future
        finally:
            self._outstanding.discard(job)

    # ------------------------------------------------------------------
    # The batch loop
    # ------------------------------------------------------------------

    async def _consume(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            batch = [job]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    await self._run_batch(batch)
                    return
                batch.append(extra)
            await self._run_batch(batch)

    async def _run_batch(self, batch: List[QueryJob]) -> None:
        self.batches += 1
        groups: "OrderedDict[str, List[QueryJob]]" = OrderedDict()
        for job in batch:
            groups.setdefault(job.group_key, []).append(job)
        for group in groups.values():
            await self._run_group(group)

    async def _run_group(self, group: List[QueryJob]) -> None:
        started = time.perf_counter()
        live = []
        for job in group:
            job.queue_wait = started - job.enqueued_at
            if job.future.done():
                continue  # abandoned by shutdown while queued
            live.append(job)
        if not live:
            return
        pending: List[QueryJob] = []
        for job in live:
            artifact = self.cache.lookup(job.cache_key)
            if artifact is not None:
                self._fulfil(job, artifact.payload, "hit", len(live))
            else:
                pending.append(job)
        if not pending:
            return
        first = pending[0]
        union = sorted({name for job in pending for name in job.targets})

        def _pass():
            network, pool, cold = first.materialize()
            result = run_scheme(
                first.scheme, network, pool, targets=union, **first.run_kwargs
            )
            return result, cold

        self.passes += 1
        loop = asyncio.get_running_loop()
        try:
            result, cold = await loop.run_in_executor(None, _pass)
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            self.failed += len(pending)
            failure = ComputeError(f"{type(exc).__name__}: {exc}")
            for job in pending:
                if not job.future.done():
                    job.future.set_exception(failure)
            return
        state = "cold" if cold else "miss"
        by_targets: "OrderedDict[Tuple[str, ...], List[QueryJob]]" = OrderedDict()
        for job in pending:
            by_targets.setdefault(tuple(sorted(job.targets)), []).append(job)
        for targets, jobs in by_targets.items():
            payload = {
                "bounds": {name: list(result.bounds[name]) for name in targets},
                "scheme": result.scheme,
                "epsilon": result.epsilon,
                "seconds": result.seconds,
                "tree_nodes": result.tree_nodes,
                "evals": result.evals,
                "extra": {
                    key: value
                    for key, value in result.extra.items()
                    if isinstance(value, (int, float, str))
                },
            }
            self.cache.store(
                jobs[0].cache_key, "result", payload, first.network_hash
            )
            for job in jobs:
                self._fulfil(job, payload, state, len(live))

    def _fulfil(
        self, job: QueryJob, payload: dict, cache_state: str, batched: int
    ) -> None:
        response = dict(payload)
        extra = dict(payload.get("extra", {}))
        extra["cache"] = cache_state
        extra["batched_into"] = float(batched)
        extra["queue_wait_seconds"] = job.queue_wait
        response["extra"] = extra
        if not job.future.done():
            job.future.set_result(response)
