"""Minimal HTTP/1.1 framing over asyncio streams.

The service speaks plain HTTP/JSON so any stdlib client
(``http.client``, ``curl``) can drive it, but it needs none of a web
framework's surface: requests are one JSON document in, one JSON
document out, ``Connection: close`` per exchange.  This module is the
framing layer only — request parsing with hard header/body limits and
response serialisation — shared by the server and kept free of any
engine imports.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Wire-protocol revision, stamped into every response envelope (error
#: envelopes included) so clients can gate on compatibility.  Bump on
#: breaking response-shape changes.
PROTOCOL_VERSION = 1

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed request framing (maps to a 400 when answerable)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request headers exceed the stream limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request headers too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {raw_length!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    return Request(method, path, headers, body)


def json_response(status: int, payload: dict) -> bytes:
    """Serialise one JSON response (Connection: close).

    Every envelope — success or error — carries ``protocol_version``;
    injecting it here, at the single serialisation point, is what makes
    the guarantee airtight.
    """
    document = dict(payload)
    document.setdefault("protocol_version", PROTOCOL_VERSION)
    body = json.dumps(document).encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body
