"""The ``repro serve`` asyncio HTTP/JSON query service.

A long-running front-end over the scheme registry: clients register
event networks (the :mod:`repro.network.serialize` document format)
under catalog names, then issue queries that dispatch through
:func:`repro.engine.registry.run_scheme` — every registered scheme is
servable, with its options normalised by the same capability gates as
a direct call.  Concurrent queries are coalesced by the batching layer
(:mod:`repro.serve.batching`) and answered through the dbt-style
artifact cache (:mod:`repro.serve.cache`).

Catalog semantics (the cache contract):

* **register/edit** ``PUT /networks/<name>`` — binds the name to the
  document's content hash; re-registering a name with *different*
  content drops exactly the old hash's artifacts (``cache_dropped``);
  re-registering identical content invalidates nothing.
* **rename** ``POST /networks/<name>/rename`` — remaps the catalog
  name only; artifacts are content-addressed, so nothing is dropped
  (``cache_renamed``).
* **delete** ``DELETE /networks/<name>`` — unbinds the name and drops
  the hash's artifacts unless another name still references it.

Conditioning: ``POST /condition`` is ``POST /query`` with the scheme
defaulting to ``exact-cond`` and evidence *required* — the request's
``evidence`` list (any form accepted by
:func:`repro.engine.registry.normalise_evidence`) merged with the
network's *sticky* evidence, set with ``PUT /networks/<name>/evidence``
and cleared with ``DELETE`` (or by re-registering the network).
Evidence participates in the normalised options, so it is part of the
artifact-cache key for evidence-capable schemes and normalised away —
one shared cache entry — for all others.  Every response envelope
carries ``protocol_version`` (:data:`repro.serve.protocol.PROTOCOL_VERSION`).

Endpoints: ``GET /healthz``, ``GET /stats``, ``GET /schemes``,
``PUT /networks/<name>``, ``DELETE /networks/<name>``,
``POST /networks/<name>/rename``,
``PUT/DELETE /networks/<name>/evidence``, ``POST /query``,
``POST /condition``, ``POST /shutdown``.
"""

from __future__ import annotations

import asyncio
import re
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..compile.ordering import ORDER_NAMES
from ..engine.registry import (
    available_schemes,
    get_scheme,
    normalise_evidence,
    normalise_options,
    scheme_capabilities,
    CAP_BULK,
    CAP_EVIDENCE,
)
from ..network.serialize import (
    canonical_json_bytes,
    content_hash,
    network_from_dict,
    pool_from_dict,
)
from .batching import (
    BatchingExecutor,
    ComputeError,
    QueryJob,
    QueueFull,
    ShuttingDown,
)
from .cache import DEFAULT_CACHE_BYTES, ArtifactCache
from .protocol import ProtocolError, Request, json_response, read_request

_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,128}$")

#: Execution modes a served query may request; ``socket`` needs remote
#: workers joined to the *caller's* coordinator and is not servable.
SERVABLE_EXECUTIONS = ("simulate", "threads", "process")


class ServeError(Exception):
    """A request error with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class CatalogEntry:
    """One registered network: its document and content identity.

    ``evidence`` is the *sticky* evidence set via
    ``PUT /networks/<name>/evidence``: canonical entries merged into
    every evidence-capable query against this name.  Re-registering the
    name resets it — new content, fresh conditioning state.
    """

    name: str
    document: dict
    network_hash: str
    nbytes: int
    evidence: Tuple[tuple, ...] = ()


class ReproServer:
    """The asyncio service: catalog + batching executor + cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_pending: int = 256,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.cache = ArtifactCache(cache_bytes)
        self.executor = BatchingExecutor(
            self.cache, max_batch=max_batch, max_pending=max_pending
        )
        self.catalog: Dict[str, CatalogEntry] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._shutdown = None  # asyncio.Event, created on start()
        self._drain_timeout = 5.0
        self._started_at = time.perf_counter()
        self.report: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Catalog operations (shared by HTTP routes and CLI preloading)
    # ------------------------------------------------------------------

    def put_network(self, name: str, document: dict) -> dict:
        """Register (or edit) a catalog network from its document."""
        if not _NAME_RE.match(name):
            raise ServeError(400, f"bad network name {name!r}")
        if (
            not isinstance(document, dict)
            or "network" not in document
            or "pool" not in document
        ):
            raise ServeError(
                400, "body must be a document with 'network' and 'pool'"
            )
        try:
            # Validate eagerly: a malformed document must fail the PUT,
            # not the first query that tries to materialize it.
            network_from_dict(document["network"])
            pool_from_dict(document["pool"])
        except (KeyError, ValueError, TypeError) as exc:
            raise ServeError(400, f"invalid network document: {exc}") from exc
        payload = canonical_json_bytes(document)
        network_hash = content_hash(document)
        previous = self.catalog.get(name)
        invalidated = 0
        if previous is not None and previous.network_hash != network_hash:
            # An edit: the name now means different content, so the old
            # hash is unreachable through this name.  Drop its
            # artifacts unless another catalog name still serves it.
            if not self._hash_referenced(previous.network_hash, exclude=name):
                invalidated = self.cache.drop_network(previous.network_hash)
        self.catalog[name] = CatalogEntry(
            name, document, network_hash, len(payload)
        )
        return {
            "network": name,
            "hash": network_hash,
            "replaced": previous is not None,
            "invalidated": invalidated,
        }

    def delete_network(self, name: str) -> dict:
        entry = self.catalog.pop(name, None)
        if entry is None:
            raise ServeError(404, f"unknown network {name!r}")
        invalidated = 0
        if not self._hash_referenced(entry.network_hash):
            invalidated = self.cache.drop_network(entry.network_hash)
        return {"network": name, "invalidated": invalidated}

    def rename_network(self, name: str, new_name: str) -> dict:
        entry = self.catalog.get(name)
        if entry is None:
            raise ServeError(404, f"unknown network {name!r}")
        if not _NAME_RE.match(new_name):
            raise ServeError(400, f"bad network name {new_name!r}")
        if new_name in self.catalog:
            raise ServeError(409, f"network {new_name!r} already exists")
        del self.catalog[name]
        entry.name = new_name
        self.catalog[new_name] = entry
        invalidated = self.cache.rename_network(name, new_name)
        return {
            "network": new_name,
            "was": name,
            "hash": entry.network_hash,
            "invalidated": invalidated,
        }

    def _hash_referenced(self, network_hash: str, exclude: str = "") -> bool:
        return any(
            entry.network_hash == network_hash
            for entry in self.catalog.values()
            if entry.name != exclude
        )

    # ------------------------------------------------------------------
    # Query preparation
    # ------------------------------------------------------------------

    def _prepare_job(
        self, payload: dict, require_evidence: bool = False
    ) -> QueryJob:
        name = payload.get("network")
        if not isinstance(name, str):
            raise ServeError(400, "missing 'network' (a catalog name)")
        entry = self.catalog.get(name)
        if entry is None:
            raise ServeError(404, f"unknown network {name!r}")
        scheme = payload.get("scheme", "exact")
        try:
            spec = get_scheme(scheme)
        except ValueError as exc:
            raise ServeError(400, str(exc)) from exc
        try:
            request_evidence = normalise_evidence(payload.get("evidence"))
            # The sticky set and the request's entries must agree; the
            # merge re-canonicalises and surfaces conflicts as a 400.
            evidence = normalise_evidence(
                tuple(entry.evidence) + request_evidence
            )
        except ValueError as exc:
            raise ServeError(400, str(exc)) from exc
        if require_evidence:
            if not spec.has(CAP_EVIDENCE):
                raise ServeError(
                    400,
                    f"scheme {scheme!r} cannot condition on evidence; "
                    f"expected one of "
                    f"{available_schemes(capability=CAP_EVIDENCE)}",
                )
            if not evidence:
                raise ServeError(
                    400,
                    "conditioning requires evidence: pass an 'evidence' "
                    "list or set sticky evidence with "
                    f"PUT /networks/{name}/evidence",
                )
        self._validate_evidence(entry, evidence)
        execution = payload.get("execution", "simulate")
        if execution not in SERVABLE_EXECUTIONS:
            raise ServeError(
                400,
                f"execution {execution!r} is not servable; "
                f"expected one of {SERVABLE_EXECUTIONS}",
            )
        known_targets = entry.document["network"]["targets"]
        raw_targets = payload.get("targets")
        if raw_targets is None:
            targets = tuple(known_targets)
        elif isinstance(raw_targets, list) and all(
            isinstance(target, str) for target in raw_targets
        ):
            unknown = [t for t in raw_targets if t not in known_targets]
            if unknown:
                raise ServeError(400, f"unknown targets {unknown!r}")
            if not raw_targets:
                raise ServeError(400, "empty target list")
            targets = tuple(dict.fromkeys(raw_targets))
        else:
            raise ServeError(400, "'targets' must be a list of names")
        order = payload.get("ordering", payload.get("order", "frequency"))
        if isinstance(order, str):
            if order not in ORDER_NAMES:
                raise ServeError(
                    400,
                    f"unknown ordering {order!r}; expected one of "
                    f"{ORDER_NAMES} or an index list",
                )
        elif not isinstance(order, list) or not all(
            isinstance(index, int) for index in order
        ):
            raise ServeError(
                400, "'ordering' must be a strategy name or an index list"
            )
        try:
            options = normalise_options(
                scheme,
                epsilon=float(payload.get("epsilon", 0.0)),
                ordering=order,
                workers=payload.get("workers"),
                job_size=payload.get("job_size", 3),
                execution=execution,
                timeout=payload.get("timeout"),
                samples=int(payload.get("samples", 1000)),
                seed=int(payload.get("seed", 0)),
                confidence=float(payload.get("confidence", 0.95)),
                kernel=payload.get("kernel"),
                evidence=evidence,
            )
        except (ValueError, TypeError) as exc:
            raise ServeError(400, str(exc)) from exc
        options_doc = {
            "epsilon": options.epsilon,
            "order": options.order
            if isinstance(options.order, str)
            else [int(index) for index in options.order],
            "workers": options.workers,
            "job_size": options.job_size,
            "execution": options.execution,
            "timeout": options.timeout,
            "samples": options.samples,
            "seed": options.seed,
            "confidence": options.confidence,
            "kernel": options.kernel,
            # Normalised away (empty) for evidence-free schemes, so
            # conditioned and unconditioned requests share cache keys
            # only when the engine pass is provably identical.
            "evidence": [list(item) for item in options.evidence],
        }
        sorted_targets = sorted(targets)
        # Bulk schemes evaluate all targets in one sweep with per-target
        # answers independent of the target set, so their group key
        # ignores targets (the pass runs the union); every other scheme
        # coalesces identical target sets only.
        group_doc = {
            "network": entry.network_hash,
            "scheme": scheme,
            "options": options_doc,
            "targets": None if spec.has(CAP_BULK) else sorted_targets,
        }
        cache_doc = {
            "network": entry.network_hash,
            "scheme": scheme,
            "options": options_doc,
            "targets": sorted_targets,
        }
        run_kwargs = {
            "epsilon": options.epsilon,
            "order": options.order,
            "workers": options.workers,
            "job_size": options.job_size,
            "execution": options.execution,
            "timeout": options.timeout,
            "samples": options.samples,
            "seed": options.seed,
            "confidence": options.confidence,
            "kernel": options.kernel,
            "evidence": options.evidence,
        }
        return QueryJob(
            scheme=scheme,
            targets=targets,
            network_hash=entry.network_hash,
            group_key=content_hash(group_doc),
            cache_key=content_hash(cache_doc),
            run_kwargs=run_kwargs,
            materialize=self._materializer(entry),
        )

    def _materializer(self, entry: CatalogEntry):
        """A pass-time resolver for the compiled-network artifact.

        Captures the document (snapshot semantics: a query admitted
        before an edit is answered against the content it named), and
        reports ``cold=True`` when no compiled artifact was resident —
        either the first query against this content or re-entry after
        an LRU eviction.
        """
        cache = self.cache
        document = entry.document
        network_hash = entry.network_hash
        nbytes = entry.nbytes

        def materialize():
            artifact = cache.lookup(f"compiled:{network_hash}")
            if artifact is not None:
                network, pool = artifact.payload
                return network, pool, False
            network = network_from_dict(document["network"])
            pool = pool_from_dict(document["pool"])
            cache.store(
                f"compiled:{network_hash}",
                "compiled",
                (network, pool),
                network_hash,
                nbytes=nbytes,
            )
            return network, pool, True

        return materialize

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._started_at = time.perf_counter()

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> Dict[str, float]:
        """Accept until a shutdown request; drain; return the report."""
        assert self._server is not None, "server not started"
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        report = await self.executor.shutdown(self._drain_timeout)
        # Give in-flight connection tasks a moment to flush their
        # (possibly 503) responses before the loop goes away.
        if self._connections:
            await asyncio.wait(tuple(self._connections), timeout=1.0)
        self.report = report
        return report

    def request_shutdown(self, drain_timeout: float = 5.0) -> None:
        self._drain_timeout = drain_timeout
        if self._shutdown is not None:
            self._shutdown.set()

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                status, payload = await self._dispatch(request)
            except ProtocolError as exc:
                status, payload = 400, {"error": str(exc)}
            except ServeError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except (
                Exception
            ) as exc:  # noqa: BLE001 - connection isolation boundary
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            try:
                writer.write(json_response(status, payload))
                await writer.drain()
            except (ConnectionError, OSError):
                # The client went away mid-response; its peers and the
                # accept loop are unaffected.
                pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> Tuple[int, dict]:
        method = request.method
        parts = [part for part in request.path.split("/") if part]
        if parts == ["healthz"] and method == "GET":
            return 200, {"status": "ok"}
        if parts == ["stats"] and method == "GET":
            return 200, self._stats()
        if parts == ["schemes"] and method == "GET":
            return 200, {
                "schemes": {
                    name: sorted(scheme_capabilities(name))
                    for name in available_schemes()
                }
            }
        if parts == ["shutdown"] and method == "POST":
            body = request.json()
            timeout = float(body.get("drain_timeout", 5.0))
            self.request_shutdown(timeout)
            return 200, {"status": "shutting-down", "drain_timeout": timeout}
        if parts == ["query"] and method == "POST":
            return await self._handle_query(request.json())
        if parts == ["condition"] and method == "POST":
            payload = dict(request.json())
            payload.setdefault("scheme", "exact-cond")
            return await self._handle_query(payload, require_evidence=True)
        if (
            len(parts) == 3
            and parts[0] == "networks"
            and parts[2] == "evidence"
        ):
            return self._handle_evidence(parts[1], method, request)
        if len(parts) == 2 and parts[0] == "networks":
            name = parts[1]
            if method in ("PUT", "POST"):
                return 200, self.put_network(name, request.json())
            if method == "DELETE":
                return 200, self.delete_network(name)
            raise ServeError(405, f"{method} not supported on networks")
        if (
            len(parts) == 3
            and parts[0] == "networks"
            and parts[2] == "rename"
            and method == "POST"
        ):
            body = request.json()
            new_name = body.get("to")
            if not isinstance(new_name, str):
                raise ServeError(400, "rename body needs a 'to' name")
            return 200, self.rename_network(parts[1], new_name)
        raise ServeError(404, f"no route for {method} {request.path}")

    @staticmethod
    def _validate_evidence(
        entry: CatalogEntry, evidence: Tuple[tuple, ...]
    ) -> None:
        """Evidence must name real events/variables of the document."""
        known_names = entry.document["network"].get("names", {})
        pool_size = len(entry.document["pool"].get("probabilities", ()))
        for item in evidence:
            if item[0] == "event" and item[1] not in known_names:
                raise ServeError(400, f"unknown evidence event {item[1]!r}")
            if item[0] == "var" and item[1] >= pool_size:
                raise ServeError(
                    400,
                    f"evidence variable {item[1]} is not in the pool "
                    f"(size {pool_size})",
                )

    def _handle_evidence(
        self, name: str, method: str, request: Request
    ) -> Tuple[int, dict]:
        """Sticky evidence CRUD: ``PUT``/``DELETE /networks/<n>/evidence``."""
        entry = self.catalog.get(name)
        if entry is None:
            raise ServeError(404, f"unknown network {name!r}")
        if method == "PUT":
            body = request.json()
            try:
                evidence = normalise_evidence(body.get("evidence"))
            except ValueError as exc:
                raise ServeError(400, str(exc)) from exc
            if not evidence:
                raise ServeError(
                    400, "evidence body needs a non-empty 'evidence' list"
                )
            self._validate_evidence(entry, evidence)
            entry.evidence = evidence
            return 200, {
                "network": name,
                "evidence": [list(item) for item in evidence],
            }
        if method == "DELETE":
            cleared = len(entry.evidence)
            entry.evidence = ()
            return 200, {"network": name, "cleared": cleared}
        raise ServeError(405, f"{method} not supported on evidence")

    async def _handle_query(
        self, payload: dict, require_evidence: bool = False
    ) -> Tuple[int, dict]:
        job = self._prepare_job(payload, require_evidence=require_evidence)
        try:
            response = await self.executor.submit(job)
        except (QueueFull, ShuttingDown) as exc:
            return 503, {"error": str(exc)}
        except ComputeError as exc:
            return 500, {"error": str(exc)}
        return 200, response

    def _stats(self) -> dict:
        return {
            "uptime_seconds": time.perf_counter() - self._started_at,
            "cache": self.cache.stats(),
            "executor": {
                "pending": self.executor.pending,
                "requests": self.executor.requests,
                "passes": self.executor.passes,
                "batches": self.executor.batches,
                "rejected": self.executor.rejected,
                "abandoned": self.executor.abandoned,
                "failed": self.executor.failed,
                "max_batch": self.executor.max_batch,
                "max_pending": self.executor.max_pending,
            },
            "networks": {
                name: entry.network_hash
                for name, entry in sorted(self.catalog.items())
            },
        }


class ServerThread:
    """A server on its own event-loop thread (tests and benchmarks).

    The server object is reachable as ``.server`` for in-process
    assertions (cache counters, executor instrumentation); HTTP clients
    talk to ``.port``.  ``stop()`` performs the drain-and-report
    shutdown and returns the report.
    """

    def __init__(self, **server_kwargs) -> None:
        self.server = ReproServer(**server_kwargs)
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self.report: Optional[Dict[str, float]] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start")
        if self._failure is not None:
            raise RuntimeError("server thread failed") from self._failure

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.server.start()
        self.loop = asyncio.get_running_loop()
        self._ready.set()
        self.report = await self.server.serve_forever()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, drain_timeout: float = 5.0) -> Optional[Dict[str, float]]:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(
                self.server.request_shutdown, drain_timeout
            )
            self._thread.join(timeout=30.0)
        return self.report

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
