"""Content-addressed artifact cache for the service layer.

The cache follows the dbt materialization idiom: compiled products are
*first-class cached relations* with explicit drop/rename hooks, not
ad-hoc memo dicts.  Two artifact kinds are materialized:

* ``compiled`` — a deserialised ``(network, pool)`` pair (the engines'
  per-network caches — flat IR, schedules, cones — accrete on the
  network object, so holding it *is* holding the compiled form);
* ``result`` — the decision-tree products of one engine pass: bounds
  per target plus the run's instrumentation.

Every artifact is keyed by a content hash (see
:func:`repro.network.serialize.content_hash`) and *tagged* with the
hash of the network it derives from, so invalidation is exact: editing
a network drops precisely the artifacts tagged with its old hash
(``cache_dropped``), while renaming it touches nothing — names live in
the server's catalog, artifacts are content-addressed
(``cache_renamed`` is a catalog-only operation).

Residency is bounded by an LRU byte cap: each artifact carries its
pickled size, and storing past the cap evicts least-recently-used
artifacts (of either kind) until the total fits.  ``hits`` /
``misses`` / ``evictions`` / ``invalidations`` counters are exact and
surfaced through the server's ``/stats`` endpoint and per-response
``extra``.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

DEFAULT_CACHE_BYTES = 64 << 20


@dataclass
class Artifact:
    """One materialized relation: a payload plus its accounting."""

    key: str
    kind: str  # "compiled" | "result"
    payload: object
    nbytes: int
    network_hash: str


def payload_nbytes(payload: object) -> int:
    """Byte charge for a payload (its pickled size).

    Network objects carry unpicklable accreted caches in odd corners,
    so callers materializing ``compiled`` artifacts pass an explicit
    size (the canonical document length) instead.
    """
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class ArtifactCache:
    """LRU byte-capped store of content-addressed artifacts."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, Artifact]" = OrderedDict()
        self._by_network: Dict[str, Set[str]] = {}
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> Optional[Artifact]:
        """The artifact under ``key`` (refreshing its recency), or None."""
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return artifact

    def contains(self, key: str) -> bool:
        """Presence probe that moves no counters and no LRU state."""
        with self._lock:
            return key in self._entries

    def store(
        self,
        key: str,
        kind: str,
        payload: object,
        network_hash: str,
        nbytes: Optional[int] = None,
    ) -> Artifact:
        """Materialize an artifact (replacing any previous entry)."""
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        artifact = Artifact(key, kind, payload, size, network_hash)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._untag(previous)
                self.total_bytes -= previous.nbytes
            self._entries[key] = artifact
            self._by_network.setdefault(network_hash, set()).add(key)
            self.total_bytes += size
            self._evict_over_cap()
        return artifact

    def _untag(self, artifact: Artifact) -> None:
        keys = self._by_network.get(artifact.network_hash)
        if keys is not None:
            keys.discard(artifact.key)
            if not keys:
                del self._by_network[artifact.network_hash]

    def _evict_over_cap(self) -> None:
        # Never evict the artifact just stored (it is most-recent); a
        # payload larger than the whole cap leaves exactly that one
        # entry resident until something displaces it.
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            _, artifact = self._entries.popitem(last=False)
            self._untag(artifact)
            self.total_bytes -= artifact.nbytes
            self.evictions += 1

    # ------------------------------------------------------------------
    # Explicit invalidation (the dbt cache_dropped / cache_renamed hooks)
    # ------------------------------------------------------------------

    def drop_network(self, network_hash: str) -> int:
        """Drop every artifact derived from ``network_hash``.

        The ``cache_dropped`` hook: called when a catalog entry is
        deleted or *edited* (an edit rebinds the name to a new content
        hash, so the old hash's artifacts can never be reached again).
        Returns the number of artifacts dropped; each counts as one
        invalidation.
        """
        with self._lock:
            keys = self._by_network.pop(network_hash, set())
            for key in keys:
                artifact = self._entries.pop(key, None)
                if artifact is not None:
                    self.total_bytes -= artifact.nbytes
                    self.invalidations += 1
            return len(keys)

    def rename_network(self, old_name: str, new_name: str) -> int:
        """The ``cache_renamed`` hook: content-addressed artifacts are
        name-independent, so a catalog rename invalidates nothing.
        Exists so the server's rename path states its cache contract
        explicitly (and so tests can assert the zero).  Returns 0.
        """
        return 0

    def network_keys(self, network_hash: str) -> Iterable[str]:
        with self._lock:
            return tuple(self._by_network.get(network_hash, ()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            kinds: Dict[str, int] = {}
            for artifact in self._entries.values():
                kinds[artifact.kind] = kinds.get(artifact.kind, 0) + 1
            return {
                "entries": len(self._entries),
                "compiled_entries": kinds.get("compiled", 0),
                "result_entries": kinds.get("result", 0),
                "bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
