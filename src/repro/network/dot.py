"""Graphviz export of event networks (for debugging and documentation).

Renders the DAG in the style of the paper's Figure 5: random variables at
the bottom, Boolean connectives and c-value aggregates above, targets
highlighted.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..events.values import format_value
from .nodes import EventNetwork, Kind

_SHAPES = {
    Kind.VAR: "circle",
    Kind.TRUE: "plaintext",
    Kind.FALSE: "plaintext",
    Kind.GUARD: "box",
    Kind.SUM: "box",
    Kind.PROD: "box",
    Kind.INV: "box",
    Kind.POW: "box",
    Kind.DIST: "box",
    Kind.COND: "box",
    Kind.LOOP_IN: "house",
}


def _label(network: EventNetwork, node_id: int) -> str:
    node = network.nodes[node_id]
    kind = node.kind
    if kind is Kind.VAR:
        return f"x{node.payload}"
    if kind is Kind.TRUE:
        return "⊤"
    if kind is Kind.FALSE:
        return "⊥"
    if kind is Kind.NOT:
        return "¬"
    if kind is Kind.AND:
        return "∧"
    if kind is Kind.OR:
        return "∨"
    if kind is Kind.ATOM:
        return node.payload
    if kind is Kind.GUARD:
        return f"⊗ {format_value(node.payload, precision=2)}"
    if kind is Kind.COND:
        return "∧⊗"
    if kind is Kind.SUM:
        return "Σ"
    if kind is Kind.PROD:
        return "Π"
    if kind is Kind.INV:
        return "⁻¹"
    if kind is Kind.POW:
        return f"^{node.payload}"
    if kind is Kind.DIST:
        return "dist"
    if kind is Kind.LOOP_IN:
        return f"⟲ {node.payload[0]}"
    return kind.name


def to_dot(
    network: EventNetwork,
    roots: Optional[Sequence[int]] = None,
    graph_name: str = "event_network",
) -> str:
    """Render (a fragment of) the network as a Graphviz ``digraph``."""
    if roots is None:
        include = set(range(len(network.nodes)))
    else:
        include = network.reachable_from(list(roots))
    target_ids = set(network.targets.values())
    target_names = {node_id: name for name, node_id in network.targets.items()}

    lines = [f"digraph {graph_name} {{", "  rankdir=BT;"]
    for node in network.nodes:
        if node.id not in include:
            continue
        shape = _SHAPES.get(node.kind, "ellipse")
        label = _label(network, node.id).replace('"', "'")
        attributes = [f'label="{label}"', f"shape={shape}"]
        if node.id in target_ids:
            attributes.append("style=filled")
            attributes.append('fillcolor="lightblue"')
            attributes.append(f'xlabel="{target_names[node.id]}"')
        lines.append(f"  n{node.id} [{', '.join(attributes)}];")
    for node in network.nodes:
        if node.id not in include:
            continue
        for child in node.children:
            lines.append(f"  n{child} -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(network: EventNetwork, path: str, **options) -> None:
    """Write the Graphviz rendering to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(network, **options))
