"""Folded event networks for bounded-range loops (paper, Section 4.2).

ENFrame offers two encodings of loops: *unfolded* (every iteration's
events are distinct nodes — what :mod:`repro.network.build` produces for
a grounded program) and *folded*, "in which all iterations are captured
into a single set of nodes" and compilation loops over the same nodes
with a per-iteration mask ``M[t][v]``.

A :class:`FoldedNetwork` is an event network with *loop-input* nodes:
each names a slot whose value at iteration ``t`` is the value of the
slot's *next* node at iteration ``t-1`` (or of its *init* node for
``t = 0``).  Folded networks trade memory for bookkeeping: the network
is independent of the iteration count, matching the paper's observation
that unfolding "can lead to prohibitively large event networks".
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..events.expressions import CVal, Event, Expression
from .build import NetworkBuilder
from .nodes import EventNetwork, Kind


class LoopEvent(Event):
    """A Boolean loop-carried slot, used inside template expressions."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"⟲{self.name}"

    def _compute_hash(self) -> int:
        return hash(("loop-event", self.name))

    __hash__ = Expression.__hash__

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LoopEvent) and other.name == self.name


class LoopCVal(CVal):
    """A numeric loop-carried slot, used inside template expressions."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"⟲{self.name}"

    def _compute_hash(self) -> int:
        return hash(("loop-cval", self.name))

    __hash__ = Expression.__hash__

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LoopCVal) and other.name == self.name


class FoldedNetwork(EventNetwork):
    """An event network with loop-input slots and an iteration count."""

    def __init__(self, iterations: int) -> None:
        super().__init__()
        if iterations < 1:
            raise ValueError("folded networks need at least one iteration")
        self.iterations = iterations
        # slot name -> (loop_in node, init node, next node)
        self.slots: Dict[str, Tuple[int, Optional[int], Optional[int]]] = {}
        # (node count at computation time, dependent set) — keyed by size
        # so growing the network invalidates it.
        self._loop_dependent: Optional[Tuple[int, Set[int]]] = None

    def define_slot(self, name: str, init_node: int, next_node: int) -> None:
        """Bind a slot's initial value and its iteration update."""
        if name not in self.slots:
            raise KeyError(f"slot {name!r} was never referenced by the template")
        loop_in, _, _ = self.slots[name]
        self.slots[name] = (loop_in, init_node, next_node)
        self._loop_dependent = None
        # Rebinding changes the iteration semantics without growing the
        # network, so the size-keyed folded flat IR must be dropped too.
        self._folded_flat_ir = None

    def check_complete(self) -> None:
        for name, (_, init_node, next_node) in self.slots.items():
            if init_node is None or next_node is None:
                raise ValueError(f"slot {name!r} has no init/next binding")

    def loop_dependent(self) -> Set[int]:
        """Node ids whose value can change across iterations.

        ``self.nodes`` is topologically ordered (children precede
        parents), so a single pass settles the fixpoint: by the time a
        node is visited, every child's dependence is already known.
        Cached per network size, so nodes appended after the first call
        (e.g. late targets) are classified too.
        """
        cached = self._loop_dependent
        if cached is not None and cached[0] == len(self.nodes):
            return cached[1]
        dependent: Set[int] = {
            loop_in for loop_in, _, _ in self.slots.values()
        }
        for node in self.nodes:
            if node.id not in dependent and any(
                child in dependent for child in node.children
            ):
                dependent.add(node.id)
        self._loop_dependent = (len(self.nodes), dependent)
        return dependent


class FoldedBuilder(NetworkBuilder):
    """Builds folded networks; template expressions may use loop slots."""

    def __init__(self, iterations: int) -> None:
        super().__init__(FoldedNetwork(iterations))

    @property
    def folded(self) -> FoldedNetwork:
        network = self.network
        assert isinstance(network, FoldedNetwork)
        return network

    def _build_uncached(self, expression: Expression) -> int:
        if isinstance(expression, (LoopEvent, LoopCVal)):
            is_boolean = isinstance(expression, LoopEvent)
            node_id = self.network._intern(
                Kind.LOOP_IN,
                (),
                (expression.name, is_boolean),
                (expression.name, is_boolean),
            )
            slots = self.folded.slots
            if expression.name not in slots:
                slots[expression.name] = (node_id, None, None)
            return node_id
        return super()._build_uncached(expression)

    def define_slot(
        self, name: str, init: Expression, next_value: Expression
    ) -> None:
        """Build the init/next expressions and bind them to a slot."""
        init_node = self.build(init)
        next_node = self.build(next_value)
        self.folded.define_slot(name, init_node, next_node)

    def add_target(self, name: str, expression: Expression) -> int:
        """Build a target expression (evaluated at the last iteration)."""
        node_id = self.build(expression)
        self.network.bind_name(name, node_id)
        self.network.add_target(name, node_id)
        return node_id
