"""Event networks: DAG representation of event programs (Section 4.1)."""

from .build import NetworkBuilder, build_network, build_targets
from .folded import FoldedBuilder, FoldedNetwork, LoopCVal, LoopEvent
from .nodes import EventNetwork, Kind, Node

__all__ = [
    "EventNetwork",
    "FoldedBuilder",
    "FoldedNetwork",
    "Kind",
    "LoopCVal",
    "LoopEvent",
    "NetworkBuilder",
    "Node",
    "build_network",
    "build_targets",
]
