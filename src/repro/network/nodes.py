"""Node representation of event networks (paper, Section 4.1).

An *event network* is the graph representation of an event program:
nodes are Boolean connectives, comparisons, aggregates and c-values;
edges point from operators to their operands.  Expressions common to
several events are represented once (hash-consing, done by the builder).

Nodes are plain records addressed by dense integer ids — the probability
computation algorithms traverse networks in tight loops, so we keep the
representation flat and primitive.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Set, Tuple




class Kind(IntEnum):
    """Node kinds; Boolean kinds first, numeric (c-value) kinds second."""

    TRUE = 0
    FALSE = 1
    VAR = 2
    NOT = 3
    AND = 4
    OR = 5
    ATOM = 6
    GUARD = 7  # EVENT ⊗ VAL
    COND = 8  # EVENT ∧ CVAL
    SUM = 9
    PROD = 10
    INV = 11
    POW = 12
    DIST = 13
    LOOP_IN = 14  # loop-carried input slot of a folded network


BOOLEAN_KINDS = frozenset(
    {Kind.TRUE, Kind.FALSE, Kind.VAR, Kind.NOT, Kind.AND, Kind.OR, Kind.ATOM}
)


class Node:
    """One node of an event network."""

    __slots__ = ("id", "kind", "children", "payload")

    def __init__(
        self, node_id: int, kind: Kind, children: Tuple[int, ...], payload
    ) -> None:
        self.id = node_id
        self.kind = kind
        self.children = children
        self.payload = payload

    @property
    def is_boolean(self) -> bool:
        return self.kind in BOOLEAN_KINDS or (
            self.kind is Kind.LOOP_IN and self.payload[1]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.id}, {self.kind.name}, children={self.children})"


class EventNetwork:
    """A hash-consed DAG of event-network nodes with named targets."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.targets: Dict[str, int] = {}
        self.names: Dict[str, int] = {}
        self._interner: Dict[tuple, int] = {}
        self._parents: Optional[List[Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # Construction (used by the builder; not part of the public API)
    # ------------------------------------------------------------------

    def _intern(self, kind: Kind, children: Tuple[int, ...], payload, key) -> int:
        full_key = (int(kind), children, key)
        existing = self._interner.get(full_key)
        if existing is not None:
            return existing
        node_id = len(self.nodes)
        self.nodes.append(Node(node_id, kind, children, payload))
        self._interner[full_key] = node_id
        self._parents = None
        return node_id

    def add_target(self, name: str, node_id: int) -> None:
        if not self.nodes[node_id].is_boolean:
            raise TypeError(f"target {name!r} must be a Boolean node")
        self.targets[name] = node_id

    def bind_name(self, name: str, node_id: int) -> None:
        self.names[name] = node_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def variables(self) -> Set[int]:
        """Indices of the random variables appearing in the network."""
        return {
            node.payload for node in self.nodes if node.kind is Kind.VAR
        }

    def variable_frequencies(self) -> Dict[int, int]:
        """How many parents each random variable feeds (ordering heuristic)."""
        counts: Dict[int, int] = {}
        parents = self.parents()
        for node in self.nodes:
            if node.kind is Kind.VAR:
                counts[node.payload] = len(parents[node.id])
        return counts

    def parents(self) -> List[Tuple[int, ...]]:
        """Parent adjacency (computed lazily and cached)."""
        if self._parents is None:
            lists: List[List[int]] = [[] for _ in self.nodes]
            for node in self.nodes:
                for child in node.children:
                    lists[child].append(node.id)
            self._parents = [tuple(parent_list) for parent_list in lists]
        return self._parents

    def reachable_from(self, roots: Sequence[int]) -> Set[int]:
        """All node ids reachable (downwards) from the given roots."""
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(self.nodes[node_id].children)
        return seen

    def depth(self) -> int:
        """Longest root-to-leaf path length in the DAG."""
        depths = [0] * len(self.nodes)
        for node in self.nodes:  # children always precede parents
            if node.children:
                depths[node.id] = 1 + max(depths[c] for c in node.children)
        return max(depths, default=0)

    def stats(self) -> Dict[str, int]:
        """Counts per node kind plus global size measures."""
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind.name] = counts.get(node.kind.name, 0) + 1
        counts["total"] = len(self.nodes)
        counts["targets"] = len(self.targets)
        counts["variables"] = len(self.variables())
        counts["depth"] = self.depth()
        return counts
