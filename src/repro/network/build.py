"""Building event networks from event programs.

Grounds an :class:`~repro.events.program.EventProgram` into a hash-consed
:class:`~repro.network.nodes.EventNetwork`: every named declaration is
built once and references resolve to the already-built node, so shared
subprograms are physically shared in the network (Section 4.1: "Expressions
common to several events are only represented once in such graphs").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..events.expressions import (
    And,
    Atom,
    CDist,
    CInv,
    CPow,
    CProd,
    CRef,
    CSum,
    Cond,
    Event,
    Expression,
    Guard,
    Not,
    Or,
    Ref,
    Var,
    _FalseEvent,
    _TrueEvent,
)
from ..events.program import EventProgram
from .nodes import EventNetwork, Kind


def _payload_key(value) -> tuple:
    if isinstance(value, np.ndarray):
        return ("vec", value.shape, value.tobytes())
    return ("scalar", value)


class NetworkBuilder:
    """Translates expressions into interned network nodes."""

    def __init__(self, network: Optional[EventNetwork] = None) -> None:
        self.network = network if network is not None else EventNetwork()
        self._memo: Dict[Expression, int] = {}

    def build_program(self, program: EventProgram) -> EventNetwork:
        """Ground every declaration, bind names, and mark targets."""
        for name, expression in program.items():
            node_id = self.build(expression)
            self.network.bind_name(name, node_id)
        for target in program.targets:
            self.network.add_target(target, self.network.names[target])
        return self.network

    def build(self, expression: Expression) -> int:
        """Build (or reuse) the node for an expression; returns its id."""
        memoised = self._memo.get(expression)
        if memoised is not None:
            return memoised
        node_id = self._build_uncached(expression)
        self._memo[expression] = node_id
        return node_id

    def _build_uncached(self, expression: Expression) -> int:
        network = self.network
        if isinstance(expression, _TrueEvent):
            return network._intern(Kind.TRUE, (), None, None)
        if isinstance(expression, _FalseEvent):
            return network._intern(Kind.FALSE, (), None, None)
        if isinstance(expression, Var):
            return network._intern(
                Kind.VAR, (), expression.index, expression.index
            )
        if isinstance(expression, (Ref, CRef)):
            if expression.name not in network.names:
                raise KeyError(
                    f"reference to {expression.name!r} before its declaration"
                )
            return network.names[expression.name]
        if isinstance(expression, Not):
            child = self.build(expression.child)
            return network._intern(Kind.NOT, (child,), None, None)
        if isinstance(expression, And):
            children = tuple(self.build(op) for op in expression.operands)
            return network._intern(Kind.AND, children, None, None)
        if isinstance(expression, Or):
            children = tuple(self.build(op) for op in expression.operands)
            return network._intern(Kind.OR, children, None, None)
        if isinstance(expression, Atom):
            left = self.build(expression.left)
            right = self.build(expression.right)
            return network._intern(
                Kind.ATOM, (left, right), expression.op, expression.op
            )
        if isinstance(expression, Guard):
            event = self.build(expression.event)
            return network._intern(
                Kind.GUARD,
                (event,),
                expression.value,
                _payload_key(expression.value),
            )
        if isinstance(expression, Cond):
            event = self.build(expression.event)
            cval = self.build(expression.cval)
            return network._intern(Kind.COND, (event, cval), None, None)
        if isinstance(expression, CSum):
            children = tuple(self.build(term) for term in expression.terms)
            return network._intern(Kind.SUM, children, None, None)
        if isinstance(expression, CProd):
            children = tuple(self.build(factor) for factor in expression.factors)
            return network._intern(Kind.PROD, children, None, None)
        if isinstance(expression, CInv):
            child = self.build(expression.child)
            return network._intern(Kind.INV, (child,), None, None)
        if isinstance(expression, CPow):
            child = self.build(expression.child)
            return network._intern(
                Kind.POW, (child,), expression.exponent, expression.exponent
            )
        if isinstance(expression, CDist):
            left = self.build(expression.left)
            right = self.build(expression.right)
            return network._intern(
                Kind.DIST, (left, right), expression.metric, expression.metric
            )
        raise TypeError(f"cannot build node for {type(expression)}")


def build_network(program: EventProgram) -> EventNetwork:
    """Convenience wrapper: ground an event program into a network."""
    return NetworkBuilder().build_program(program)


def build_targets(
    expressions: Dict[str, Event], extra: Optional[Iterable[Tuple[str, Event]]] = None
) -> EventNetwork:
    """Build a network directly from a mapping of target events.

    Handy for tests and for compiling ad-hoc events that are not part of
    a named program.
    """
    builder = NetworkBuilder()
    for name, expression in expressions.items():
        node_id = builder.build(expression)
        builder.network.bind_name(name, node_id)
        builder.network.add_target(name, node_id)
    if extra:
        for name, expression in extra:
            builder.network.bind_name(name, builder.build(expression))
    return builder.network
