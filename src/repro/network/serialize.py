"""JSON (de)serialisation of event networks and variable pools.

Compiled event networks are expensive to build for large inputs; this
module lets a platform deployment persist them (plus the variable pool
they are defined over) and reload them for later probability
computations — e.g. recompiling the same clustering with fresh
marginals after a sensor recalibration.

The format is a plain JSON document (schema version tagged) with one
record per node; vector payloads are stored as lists.  Folded networks
serialise their slot bindings and iteration count as well.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

import numpy as np

from ..worlds.variables import VariablePool
from .folded import FoldedNetwork
from .nodes import EventNetwork, Kind, Node

FORMAT_VERSION = 1


def _payload_to_json(kind: Kind, payload) -> Any:
    if payload is None:
        return None
    if kind is Kind.GUARD and isinstance(payload, np.ndarray):
        return {"vector": payload.tolist()}
    if kind is Kind.LOOP_IN:
        return {"slot": payload[0], "boolean": payload[1]}
    return payload


def _payload_from_json(kind: Kind, raw) -> Any:
    if raw is None:
        return None
    if kind is Kind.GUARD and isinstance(raw, dict):
        vector = np.asarray(raw["vector"], dtype=float)
        vector.setflags(write=False)
        return vector
    if kind is Kind.LOOP_IN:
        return (raw["slot"], raw["boolean"])
    return raw


def network_to_dict(network: EventNetwork) -> Dict[str, Any]:
    """Serialise a network (flat or folded) to a JSON-ready dict."""
    document: Dict[str, Any] = {
        "version": FORMAT_VERSION,
        "kind": "folded" if isinstance(network, FoldedNetwork) else "flat",
        "nodes": [
            {
                "k": int(node.kind),
                "c": list(node.children),
                "p": _payload_to_json(node.kind, node.payload),
            }
            for node in network.nodes
        ],
        "targets": dict(network.targets),
        "names": dict(network.names),
    }
    if isinstance(network, FoldedNetwork):
        document["iterations"] = network.iterations
        document["slots"] = {
            name: list(binding) for name, binding in network.slots.items()
        }
    return document


def network_from_dict(document: Dict[str, Any]) -> EventNetwork:
    """Rebuild a network from its serialised form."""
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported network format version {version!r}")
    if document["kind"] == "folded":
        network: EventNetwork = FoldedNetwork(document["iterations"])
    else:
        network = EventNetwork()
    for record in document["nodes"]:
        kind = Kind(record["k"])
        node_id = len(network.nodes)
        network.nodes.append(
            Node(
                node_id,
                kind,
                tuple(record["c"]),
                _payload_from_json(kind, record["p"]),
            )
        )
    network.names = {str(k): int(v) for k, v in document["names"].items()}
    network.targets = {str(k): int(v) for k, v in document["targets"].items()}
    if isinstance(network, FoldedNetwork):
        network.slots = {
            name: tuple(binding) for name, binding in document["slots"].items()
        }
        network.check_complete()
    return network


def pool_to_dict(pool: VariablePool) -> Dict[str, Any]:
    """Serialise a variable pool (marginals and names)."""
    return {
        "version": FORMAT_VERSION,
        "probabilities": list(pool.probabilities),
        "names": [pool.name(index) for index in pool.indices()],
    }


def pool_from_dict(document: Dict[str, Any]) -> VariablePool:
    if document.get("version") != FORMAT_VERSION:
        raise ValueError("unsupported pool format version")
    pool = VariablePool()
    for probability, name in zip(document["probabilities"], document["names"]):
        pool.add(probability, name=name)
    return pool


def canonical_json_bytes(document: Any) -> bytes:
    """Canonical byte encoding of a JSON-ready document.

    Keys are sorted and separators fixed, so two structurally equal
    documents encode to the same bytes regardless of insertion order —
    the property the service layer's content-addressed artifact cache
    (:mod:`repro.serve.cache`) relies on.  ``float`` values round-trip
    through ``repr`` (shortest-exact in CPython), so the encoding is
    stable across processes on the same platform.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def content_hash(document: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json_bytes`."""
    return hashlib.sha256(canonical_json_bytes(document)).hexdigest()


def network_content_hash(
    network: EventNetwork, pool: Optional[VariablePool] = None
) -> str:
    """Content hash of a network (and optionally its pool).

    Two networks (flat or folded) serialising to the same document —
    same nodes, targets, names, slot bindings, and marginals — share a
    hash; any edit (a renamed target, a changed probability) changes
    it.  This is the cache-invalidation anchor for the service layer:
    artifacts are keyed by this hash, so an edited network *cannot*
    alias a stale artifact.
    """
    document: Dict[str, Any] = {"network": network_to_dict(network)}
    if pool is not None:
        document["pool"] = pool_to_dict(pool)
    return content_hash(document)


def save_network(
    network: EventNetwork, path: str, pool: Optional[VariablePool] = None
) -> None:
    """Write a network (and optionally its pool) to a JSON file."""
    document = {"network": network_to_dict(network)}
    if pool is not None:
        document["pool"] = pool_to_dict(pool)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_network(path: str):
    """Load ``(network, pool_or_None)`` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    network = network_from_dict(document["network"])
    pool = pool_from_dict(document["pool"]) if "pool" in document else None
    return network, pool
