"""Deterministic interpreter for user programs.

Executes a parsed user program on concrete data, following the semantics
of Section 3.2 *including* the undefined value ``u``: when run on one
possible world, absent objects are represented by ``u`` and propagate
through distances, sums, and comparisons exactly as in the event
semantics.  On fully certain data this is ordinary deterministic
execution (clustering "as if the input data were deterministic").

This interpreter is one of the three independent evaluation paths used
to validate the platform (interpreter per world == event-program
semantics == compiled probabilities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple


from ..events import values as V
from ..mining.ties import break_ties, break_ties_1, break_ties_2
from .grammar import (
    ArrayInit,
    Assign,
    BinOp,
    Call,
    Compare,
    Comprehension,
    Expr,
    External,
    For,
    Index,
    Lit,
    Name,
    Reduce,
    Stmt,
    TupleAssign,
    UserProgram,
)


class InterpreterError(RuntimeError):
    """Runtime failure while executing a user program."""


@dataclass
class Externals:
    """Concrete values returned by the external calls.

    ``load_data`` / ``load_params`` are tuples matching the program's
    tuple-assignment arity; ``init`` is the single value returned by
    ``init()`` (e.g. a list of initial medoid vectors).  In a possible
    world, absent objects are passed as :data:`~repro.events.values.
    UNDEFINED` entries of the object list.
    """

    load_data: Tuple[Any, ...]
    load_params: Tuple[Any, ...] = ()
    init: Any = None

    def resolve(self, func: str) -> Any:
        if func == "loadData":
            return self.load_data
        if func == "loadParams":
            return self.load_params
        if func == "init":
            return self.init
        raise InterpreterError(f"unknown external call {func}()")


class Interpreter:
    """Executes user programs over an environment of concrete values."""

    def __init__(self, externals: Externals) -> None:
        self._externals = externals
        self.env: Dict[str, Any] = {}

    def run(self, program: UserProgram) -> Dict[str, Any]:
        """Execute the program; returns the final environment."""
        self._execute_block(program.statements)
        return self.env

    # ------------------------------------------------------------------

    def _execute_block(self, statements: Sequence[Stmt]) -> None:
        for stmt in statements:
            self._execute(stmt)

    def _execute(self, stmt: Stmt) -> None:
        if isinstance(stmt, TupleAssign):
            values = self._externals.resolve(stmt.call.func)
            if len(values) != len(stmt.names):
                raise InterpreterError(
                    f"line {stmt.line}: {stmt.call.func}() returned "
                    f"{len(values)} values for {len(stmt.names)} targets"
                )
            for name, value in zip(stmt.names, values):
                self.env[name] = value
            return
        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr)
            target = stmt.target
            if isinstance(target, Name):
                self.env[target.id] = value
            else:
                container = self._resolve_container(target)
                index = self._eval_int(target.indices[-1])
                container[index] = value
            return
        if isinstance(stmt, For):
            lower = self._eval_int(stmt.lower)
            upper = self._eval_int(stmt.upper)
            for counter in range(lower, upper):
                self.env[stmt.var] = counter
                self._execute_block(stmt.body)
            return
        raise InterpreterError(f"unknown statement {type(stmt).__name__}")

    def _resolve_container(self, target: Index) -> list:
        container = self.env.get(target.base)
        if container is None:
            raise InterpreterError(f"array {target.base!r} used before assignment")
        for index_expr in target.indices[:-1]:
            container = container[self._eval_int(index_expr)]
        if not isinstance(container, list):
            raise InterpreterError(f"{target.base!r} is not an array")
        return container

    # ------------------------------------------------------------------

    def _eval_int(self, expr: Expr) -> int:
        value = self._eval(expr)
        if isinstance(value, bool) or not isinstance(value, int):
            raise InterpreterError(f"expected an integer, got {value!r}")
        return value

    def _eval(self, expr: Expr) -> Any:
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Name):
            if expr.id not in self.env:
                raise InterpreterError(f"{expr.id!r} used before assignment")
            return self.env[expr.id]
        if isinstance(expr, Index):
            value = self.env.get(expr.base)
            if value is None:
                raise InterpreterError(f"array {expr.base!r} used before assignment")
            for index_expr in expr.indices:
                value = value[self._eval_int(index_expr)]
            return value
        if isinstance(expr, ArrayInit):
            return [None] * self._eval_int(expr.size)
        if isinstance(expr, Compare):
            return V.compare(expr.op, self._eval(expr.left), self._eval(expr.right))
        if isinstance(expr, BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            if expr.op == "+":
                return V.add(left, right)
            return V.multiply(left, right)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        if isinstance(expr, Reduce):
            return self._eval_reduce(expr)
        if isinstance(expr, External):
            return self._externals.resolve(expr.func)
        raise InterpreterError(f"unknown expression {type(expr).__name__}")

    def _eval_call(self, expr: Call) -> Any:
        if expr.func == "pow":
            base = self._eval(expr.args[0])
            exponent = self._eval_int(expr.args[1])
            return V.power(base, exponent)
        if expr.func == "invert":
            return V.invert(self._eval(expr.args[0]))
        if expr.func == "dist":
            return V.distance(self._eval(expr.args[0]), self._eval(expr.args[1]))
        if expr.func == "scalar_mult":
            return V.multiply(self._eval(expr.args[0]), self._eval(expr.args[1]))
        if expr.func == "breakTies":
            return break_ties(self._eval(expr.args[0]))
        if expr.func == "breakTies1":
            return break_ties_1(self._eval(expr.args[0]))
        if expr.func == "breakTies2":
            return break_ties_2(self._eval(expr.args[0]))
        raise InterpreterError(f"unknown function {expr.func}()")

    def _eval_reduce(self, expr: Reduce) -> Any:
        elements = list(self._reduce_elements(expr.source))
        kind = expr.kind
        if kind == "reduce_and":
            return all(bool(element) for element in elements)
        if kind == "reduce_or":
            return any(bool(element) for element in elements)
        if kind == "reduce_sum":
            total: Any = V.UNDEFINED
            for element in elements:
                total = V.add(total, element)
            return total
        if kind == "reduce_mult":
            product: Any = 1.0
            for element in elements:
                product = V.multiply(product, element)
            return product
        if kind == "reduce_count":
            # Per the translation Σ COND ⊗ 1: the count of an empty
            # selection is the undefined value, not zero.
            if not elements:
                return V.UNDEFINED
            return float(len(elements))
        raise InterpreterError(f"unknown reduce kind {kind}")

    def _reduce_elements(self, source: Expr):
        if isinstance(source, Comprehension):
            lower = self._eval_int(source.lower)
            upper = self._eval_int(source.upper)
            outer = self.env.get(source.var, _MISSING)
            for counter in range(lower, upper):
                self.env[source.var] = counter
                if source.cond is None or bool(self._eval(source.cond)):
                    yield self._eval(source.expr)
            if outer is _MISSING:
                self.env.pop(source.var, None)
            else:
                self.env[source.var] = outer
            return
        value = self._eval(source)
        if not isinstance(value, list):
            raise InterpreterError("reduce expects an array")
        yield from value


_MISSING = object()


def run_program(program: UserProgram, externals: Externals) -> Dict[str, Any]:
    """Parse-and-run convenience wrapper."""
    return Interpreter(externals).run(program)
