"""Parser for the user language: Python source → user-language AST.

User programs are syntactically Python (Section 2), so we parse with the
standard :mod:`ast` module and then *lower* the Python AST into the
restricted grammar of Figure 4, rejecting anything outside the fragment
with a :class:`UserSyntaxError` that names the offending construct and
line.
"""

from __future__ import annotations

import ast
import textwrap
from typing import List, Tuple, Union

from .grammar import (
    BREAK_TIES,
    EXTERNAL_CALLS,
    REDUCE_KINDS,
    ArrayInit,
    Assign,
    BinOp,
    Call,
    Compare,
    Comprehension,
    Expr,
    External,
    For,
    Index,
    Lit,
    Name,
    Reduce,
    Stmt,
    TupleAssign,
    UserProgram,
)

_BUILTIN_CALLS = ("pow", "invert", "dist", "scalar_mult") + BREAK_TIES

_COMPARE_OPS = {
    ast.Lt: "<",
    ast.Gt: ">",
    ast.Eq: "==",
    ast.LtE: "<=",
    ast.GtE: ">=",
}


class UserSyntaxError(SyntaxError):
    """The program uses a construct outside the Figure-4 fragment."""


def _fail(node: ast.AST, message: str) -> None:
    line = getattr(node, "lineno", 0)
    raise UserSyntaxError(f"line {line}: {message}")


def parse_program(source: str) -> UserProgram:
    """Parse user-language source into a :class:`UserProgram`."""
    module = ast.parse(textwrap.dedent(source))
    statements = tuple(_lower_stmt(stmt) for stmt in module.body)
    return UserProgram(statements=statements, source=source)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


def _lower_stmt(node: ast.stmt) -> Stmt:
    if isinstance(node, ast.Assign):
        return _lower_assign(node)
    if isinstance(node, ast.For):
        return _lower_for(node)
    _fail(node, f"unsupported statement {type(node).__name__}")


def _lower_assign(node: ast.Assign) -> Stmt:
    if len(node.targets) != 1:
        _fail(node, "chained assignment is not supported")
    target = node.targets[0]
    if isinstance(target, ast.Tuple):
        names = []
        for element in target.elts:
            if not isinstance(element, ast.Name):
                _fail(node, "tuple targets must be plain identifiers")
            names.append(element.id)
        call = _lower_expr(node.value)
        if not isinstance(call, External):
            _fail(node, "tuple assignment is only allowed for external calls")
        return TupleAssign(names=tuple(names), call=call, line=node.lineno)
    lowered_target: Union[Name, Index]
    if isinstance(target, ast.Name):
        lowered_target = Name(target.id)
    elif isinstance(target, ast.Subscript):
        lowered_target = _lower_subscript(target)
    else:
        _fail(node, "assignment target must be a name or a subscript")
    return Assign(target=lowered_target, expr=_lower_expr(node.value), line=node.lineno)


def _lower_for(node: ast.For) -> For:
    if node.orelse:
        _fail(node, "for/else is not supported")
    if not isinstance(node.target, ast.Name):
        _fail(node, "loop variable must be a plain identifier")
    lower, upper = _lower_range(node.iter)
    body = tuple(_lower_stmt(stmt) for stmt in node.body)
    return For(
        var=node.target.id, lower=lower, upper=upper, body=body, line=node.lineno
    )


def _lower_range(node: ast.expr) -> Tuple[Expr, Expr]:
    if (
        not isinstance(node, ast.Call)
        or not isinstance(node.func, ast.Name)
        or node.func.id != "range"
    ):
        _fail(node, "loops must iterate over range(lo, hi)")
    if len(node.args) != 2 or node.keywords:
        _fail(node, "range takes exactly two positional arguments")
    return _lower_expr(node.args[0]), _lower_expr(node.args[1])


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _lower_expr(node: ast.expr) -> Expr:
    if isinstance(node, ast.Constant):
        if node.value is None:
            _fail(node, "None is only allowed in [None] * size initialisers")
        if isinstance(node.value, (bool, int, float)):
            return Lit(node.value)
        _fail(node, f"unsupported literal {node.value!r}")
    if isinstance(node, ast.Name):
        return Name(node.id)
    if isinstance(node, ast.Subscript):
        return _lower_subscript(node)
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1 or len(node.comparators) != 1:
            _fail(node, "chained comparisons are not supported")
        op_type = type(node.ops[0])
        if op_type not in _COMPARE_OPS:
            _fail(node, f"unsupported comparison {op_type.__name__}")
        return Compare(
            op=_COMPARE_OPS[op_type],
            left=_lower_expr(node.left),
            right=_lower_expr(node.comparators[0]),
        )
    if isinstance(node, ast.BinOp):
        return _lower_binop(node)
    if isinstance(node, ast.Call):
        return _lower_call(node)
    _fail(node, f"unsupported expression {type(node).__name__}")


def _lower_subscript(node: ast.Subscript) -> Index:
    indices: List[Expr] = []
    current: ast.expr = node
    while isinstance(current, ast.Subscript):
        indices.append(_lower_expr(current.slice))
        current = current.value
    if not isinstance(current, ast.Name):
        _fail(node, "subscripts must apply to a named array")
    return Index(base=current.id, indices=tuple(reversed(indices)))


def _lower_binop(node: ast.BinOp) -> Expr:
    # [None] * EXPR — array initialisation.
    if isinstance(node.op, ast.Mult) and _is_none_list(node.left):
        return ArrayInit(size=_lower_expr(node.right))
    if isinstance(node.op, ast.Mult):
        return BinOp("*", _lower_expr(node.left), _lower_expr(node.right))
    if isinstance(node.op, ast.Add):
        return BinOp("+", _lower_expr(node.left), _lower_expr(node.right))
    _fail(node, f"unsupported operator {type(node.op).__name__}")


def _is_none_list(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.List)
        and len(node.elts) == 1
        and isinstance(node.elts[0], ast.Constant)
        and node.elts[0].value is None
    )


def _lower_call(node: ast.Call) -> Expr:
    if not isinstance(node.func, ast.Name):
        _fail(node, "only plain function calls are supported")
    func = node.func.id
    if node.keywords:
        _fail(node, f"{func}() does not take keyword arguments")
    if func in EXTERNAL_CALLS:
        if node.args:
            _fail(node, f"{func}() takes no arguments")
        return External(func)
    if func in REDUCE_KINDS:
        if len(node.args) != 1:
            _fail(node, f"{func}() takes exactly one argument")
        return Reduce(kind=func, source=_lower_reduce_source(node.args[0]))
    if func in _BUILTIN_CALLS:
        expected = {
            "pow": 2,
            "invert": 1,
            "dist": 2,
            "scalar_mult": 2,
            "breakTies": 1,
            "breakTies1": 1,
            "breakTies2": 1,
        }[func]
        if len(node.args) != expected:
            _fail(node, f"{func}() takes exactly {expected} argument(s)")
        return Call(func=func, args=tuple(_lower_expr(arg) for arg in node.args))
    _fail(node, f"unknown function {func}()")


def _lower_reduce_source(node: ast.expr) -> Expr:
    if isinstance(node, ast.ListComp):
        return _lower_comprehension(node)
    # Reducing a named (possibly subscripted) array is also permitted,
    # e.g. reduce_and(B) for an array B of Booleans.
    lowered = _lower_expr(node)
    if isinstance(lowered, (Name, Index)):
        return lowered
    _fail(node, "reduce expects a list comprehension or an array identifier")


def _lower_comprehension(node: ast.ListComp) -> Comprehension:
    if len(node.generators) != 1:
        _fail(node, "list comprehensions must have exactly one generator")
    generator = node.generators[0]
    if generator.is_async:
        _fail(node, "async comprehensions are not supported")
    if not isinstance(generator.target, ast.Name):
        _fail(node, "comprehension variable must be a plain identifier")
    if len(generator.ifs) > 1:
        _fail(node, "at most one if-filter is allowed")
    lower, upper = _lower_range(generator.iter)
    cond = _lower_expr(generator.ifs[0]) if generator.ifs else None
    return Comprehension(
        expr=_lower_expr(node.elt),
        var=generator.target.id,
        lower=lower,
        upper=upper,
        cond=cond,
    )
