"""Static validation of user programs (constraints of Section 2.2).

Beyond the grammar (enforced by the parser), user programs must satisfy:

* **Bounded-range loops** — the arguments of every ``range`` (in loops
  and comprehensions) are integer constants or immutable integer-valued
  variables, i.e. names bound by external calls and never reassigned,
  or enclosing loop counters.
* **Loop counters are read-only** — a loop variable may not be assigned.
* **Single assignment of parameters** — names bound by ``loadData()`` /
  ``loadParams()`` cannot be re-bound by ordinary assignments.
"""

from __future__ import annotations

from typing import List, Set

from .grammar import (
    ArrayInit,
    Assign,
    BinOp,
    Call,
    Compare,
    Comprehension,
    Expr,
    External,
    For,
    Index,
    Lit,
    Name,
    Reduce,
    TupleAssign,
    UserProgram,
)


class ValidationError(ValueError):
    """The program violates a static constraint of the user language."""


def validate_program(program: UserProgram) -> None:
    """Raise :class:`ValidationError` on the first violated constraint.

    Note that reassigning an externally bound name is legal in general —
    the paper's own MCL program (Figure 3) reassigns the matrix ``M``
    returned by ``loadData()`` — but a name used as a range bound or
    array size must never be the target of an ordinary assignment.
    """
    external_names = _external_names(program)
    assigned = _assigned_names(program)
    _check_statements(program.statements, external_names, assigned, loop_vars=[])


def _external_names(program: UserProgram) -> Set[str]:
    names: Set[str] = set()

    def visit(statements) -> None:
        for stmt in statements:
            if isinstance(stmt, TupleAssign):
                names.update(stmt.names)
            elif isinstance(stmt, For):
                visit(stmt.body)

    visit(program.statements)
    return names


def _assigned_names(program: UserProgram) -> Set[str]:
    names: Set[str] = set()

    def visit(statements) -> None:
        for stmt in statements:
            if isinstance(stmt, Assign):
                target = stmt.target
                names.add(target.id if isinstance(target, Name) else target.base)
            elif isinstance(stmt, For):
                visit(stmt.body)

    visit(program.statements)
    return names


def _check_statements(
    statements,
    external: Set[str],
    assigned: Set[str],
    loop_vars: List[str],
) -> None:
    for stmt in statements:
        if isinstance(stmt, Assign):
            target = stmt.target
            target_name = target.id if isinstance(target, Name) else target.base
            if target_name in loop_vars:
                raise ValidationError(
                    f"line {stmt.line}: loop counter {target_name!r} reassigned"
                )
            _check_expr(stmt.expr, external, assigned, loop_vars, stmt.line)
            if isinstance(target, Index):
                for index in target.indices:
                    _check_index_expr(index, external, assigned, loop_vars, stmt.line)
        elif isinstance(stmt, TupleAssign):
            continue
        elif isinstance(stmt, For):
            _check_bound(stmt.lower, external, assigned, loop_vars, stmt.line)
            _check_bound(stmt.upper, external, assigned, loop_vars, stmt.line)
            if stmt.var in loop_vars:
                raise ValidationError(
                    f"line {stmt.line}: loop counter {stmt.var!r} shadows an "
                    "enclosing loop counter"
                )
            _check_statements(stmt.body, external, assigned, loop_vars + [stmt.var])
        else:  # pragma: no cover - parser produces no other statements
            raise ValidationError(f"unknown statement {type(stmt).__name__}")


def _check_bound(
    expr: Expr, external: Set[str], assigned: Set[str], loop_vars: List[str], line: int
) -> None:
    """Range bounds: integer literals or immutable integer names."""
    if isinstance(expr, Lit):
        if not isinstance(expr.value, int) or isinstance(expr.value, bool):
            raise ValidationError(f"line {line}: range bound must be an integer")
        return
    if isinstance(expr, Name):
        if expr.id in loop_vars:
            return  # loop counters are constant within an iteration
        if expr.id in assigned:
            raise ValidationError(
                f"line {line}: range bound {expr.id!r} must be immutable, "
                "but it is assigned in the program"
            )
        return
    if isinstance(expr, BinOp):
        # Allow simple arithmetic over valid bounds, e.g. range(0, n + 1).
        _check_bound(expr.left, external, assigned, loop_vars, line)
        _check_bound(expr.right, external, assigned, loop_vars, line)
        return
    raise ValidationError(
        f"line {line}: range bounds must be integer constants or "
        "immutable integer variables"
    )


def _check_index_expr(
    expr: Expr, external: Set[str], assigned: Set[str], loop_vars: List[str], line: int
) -> None:
    """Array subscripts follow the same rules as range bounds."""
    _check_bound(expr, external, assigned, loop_vars, line)


def _check_expr(
    expr: Expr, external: Set[str], assigned: Set[str], loop_vars: List[str], line: int
) -> None:
    if isinstance(expr, (Lit, Name, External)):
        return
    if isinstance(expr, Index):
        for index in expr.indices:
            _check_index_expr(index, external, assigned, loop_vars, line)
        return
    if isinstance(expr, ArrayInit):
        _check_bound(expr.size, external, assigned, loop_vars, line)
        return
    if isinstance(expr, Compare):
        _check_expr(expr.left, external, assigned, loop_vars, line)
        _check_expr(expr.right, external, assigned, loop_vars, line)
        return
    if isinstance(expr, BinOp):
        _check_expr(expr.left, external, assigned, loop_vars, line)
        _check_expr(expr.right, external, assigned, loop_vars, line)
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            _check_expr(arg, external, assigned, loop_vars, line)
        return
    if isinstance(expr, Reduce):
        source = expr.source
        if isinstance(source, Comprehension):
            _check_bound(source.lower, external, assigned, loop_vars, line)
            _check_bound(source.upper, external, assigned, loop_vars, line)
            inner = loop_vars + [source.var]
            _check_expr(source.expr, external, assigned, inner, line)
            if source.cond is not None:
                _check_expr(source.cond, external, assigned, inner, line)
        else:
            _check_expr(source, external, assigned, loop_vars, line)
        return
    raise ValidationError(f"line {line}: unknown expression {type(expr).__name__}")
