"""ENFrame's user language: parsing, validation, execution, translation."""

from .grammar import UserProgram
from .interpreter import Externals, Interpreter, run_program
from .labels import LabelGenerator, example3_trace
from .parser import UserSyntaxError, parse_program
from .translate import (
    TranslationError,
    TranslationExternals,
    Translator,
    dataset_externals,
    translate_source,
)
from .validator import ValidationError, validate_program

__all__ = [
    "Externals",
    "Interpreter",
    "LabelGenerator",
    "TranslationError",
    "TranslationExternals",
    "Translator",
    "UserProgram",
    "UserSyntaxError",
    "ValidationError",
    "dataset_externals",
    "example3_trace",
    "parse_program",
    "run_program",
    "translate_source",
    "validate_program",
]
