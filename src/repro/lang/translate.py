"""Translation of user programs into event programs (paper, Section 3.5).

The two challenges of the translation are (i) mapping mutable user
variables onto immutable event declarations and (ii) translating
``reduce_*`` calls.  Mutability is handled by single-assignment
renaming: bounded-range loops are grounded (each iteration instantiates
its declarations with the loop counter fixed), and every assignment of a
variable ``M`` declares a fresh event identifier ``M@c`` — the grounded
equivalent of the paper's ``getLabel`` block-counter scheme (module
:mod:`repro.lang.labels` implements the hierarchical labels of Example 3
verbatim).  Reduce calls translate per Section 3.5:

* ``reduce_and``  → conjunction (filters become implications);
* ``reduce_or``   → disjunction (filters become conjunctions);
* ``reduce_sum``  → Σ of c-values conditioned on the filter;
* ``reduce_mult`` → Π with filtered factors encoded as
  ``(cond ∧ expr) + (¬cond ⊗ 1)`` so that excluded factors contribute
  the multiplicative identity;
* ``reduce_count`` → ``Σ cond ⊗ 1``.

Note on ``reduce_and`` filters: the paper's text translates the filtered
conjunction to ``∧ (COND ∧ EXPR)``, which disagrees with the
deterministic semantics of filtering (elements failing the filter are
*excluded*, not conjoined as false).  We translate filters as
implications ``∧ (¬COND ∨ EXPR)``, which matches the interpreter; the
paper's own example programs only use unfiltered ``reduce_and``, where
both translations coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.datasets import ProbabilisticDataset
from ..events.expressions import (
    FALSE,
    TRUE,
    CVal,
    Event,
    atom,
    cdist,
    cinv,
    cond,
    conj,
    cpow,
    cprod,
    csum,
    disj,
    guard,
    literal,
    negate,
)
from ..events.program import EventProgram
from ..events import values as V
from ..mining.ties import tie_break_events
from .grammar import (
    ArrayInit,
    Assign,
    BinOp,
    Call,
    Compare,
    Comprehension,
    Expr,
    External,
    For,
    Index,
    Lit,
    Name,
    Reduce,
    Stmt,
    TupleAssign,
    UserProgram,
)
from .parser import parse_program
from .validator import validate_program


class TranslationError(RuntimeError):
    """The program cannot be translated to an event program."""


Symbolic = Union[int, float, bool, Event, CVal, list, None]


@dataclass
class TranslationExternals:
    """Values injected for the external calls during translation.

    Entries may be integers/floats (compile-time constants, e.g. ``n``,
    ``k``, ``iter``), event/c-value expressions, numpy vectors (certain
    values, wrapped as ``⊤ ⊗ v``), or nested lists thereof.
    """

    load_data: Tuple[Any, ...]
    load_params: Tuple[Any, ...] = ()
    init: Any = None

    def resolve(self, func: str) -> Any:
        if func == "loadData":
            return self.load_data
        if func == "loadParams":
            return self.load_params
        if func == "init":
            return self.init
        raise TranslationError(f"unknown external call {func}()")


def dataset_externals(
    dataset: ProbabilisticDataset,
    params: Tuple[Any, ...],
    init_indices: Sequence[int],
) -> TranslationExternals:
    """Bindings for the clustering programs of Figures 1 and 2.

    ``loadData()`` returns the guarded objects and their count;
    ``init()`` returns the guarded initial medoids/centroids.
    """
    objects = [
        guard(dataset.events[l], dataset.points[l]) for l in range(len(dataset))
    ]
    init = [
        guard(dataset.events[l], dataset.points[l]) for l in init_indices
    ]
    return TranslationExternals(
        load_data=(objects, len(dataset)), load_params=tuple(params), init=init
    )


class Translator:
    """Translates a user program into an :class:`EventProgram`."""

    def __init__(self, externals: TranslationExternals) -> None:
        self._externals = externals
        self.program = EventProgram()
        self.env: Dict[str, Symbolic] = {}
        self._versions: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def translate(self, program: UserProgram) -> EventProgram:
        """Ground every statement into event declarations."""
        self._execute_block(program.statements)
        return self.program

    def target(self, variable: str, *indices: int) -> str:
        """Mark the (indexed) current value of a variable as a target."""
        value: Symbolic = self.env.get(variable)
        if value is None:
            raise TranslationError(f"unknown variable {variable!r}")
        for index in indices:
            if not isinstance(value, list):
                raise TranslationError(f"{variable!r} has fewer dimensions")
            value = value[index]
        name = _ref_name(value)
        if name is None:
            raise TranslationError(
                f"{variable}{list(indices)} is not a declared Boolean event"
            )
        self.program.add_target(name)
        return name

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _execute_block(self, statements: Sequence[Stmt]) -> None:
        for stmt in statements:
            self._execute(stmt)

    def _execute(self, stmt: Stmt) -> None:
        if isinstance(stmt, TupleAssign):
            values = self._externals.resolve(stmt.call.func)
            if len(values) != len(stmt.names):
                raise TranslationError(
                    f"line {stmt.line}: {stmt.call.func}() returned "
                    f"{len(values)} values for {len(stmt.names)} targets"
                )
            for name, value in zip(stmt.names, values):
                self.env[name] = self._declare(name, _ingest(value))
            return
        if isinstance(stmt, Assign):
            value = self._translate_expr(stmt.expr)
            target = stmt.target
            if isinstance(target, Name):
                self.env[target.id] = self._declare(target.id, value)
            else:
                container = self._resolve_container(target)
                index = self._eval_index(target.indices[-1])
                label = target.base + "".join(
                    f"[{self._eval_index(ix)}]" for ix in target.indices
                )
                container[index] = self._declare_leafed(label, value)
            return
        if isinstance(stmt, For):
            lower = self._eval_index(stmt.lower)
            upper = self._eval_index(stmt.upper)
            for counter in range(lower, upper):
                self.env[stmt.var] = counter
                self._execute_block(stmt.body)
            return
        raise TranslationError(f"unknown statement {type(stmt).__name__}")

    def _resolve_container(self, target: Index) -> list:
        value = self.env.get(target.base)
        if value is None:
            raise TranslationError(f"array {target.base!r} used before assignment")
        for index_expr in target.indices[:-1]:
            value = value[self._eval_index(index_expr)]
        if not isinstance(value, list):
            raise TranslationError(f"{target.base!r} is not an array")
        return value

    # ------------------------------------------------------------------
    # Declarations (single-assignment renaming)
    # ------------------------------------------------------------------

    def _fresh(self, base: str) -> str:
        version = self._versions.get(base, 0)
        self._versions[base] = version + 1
        return f"{base}@{version}"

    def _declare(self, base: str, value: Symbolic) -> Symbolic:
        """Declare the assigned value under fresh identifiers."""
        if isinstance(value, (Event, CVal)):
            label = self._fresh(base)
            return self.program.declare(label, value)
        if isinstance(value, list):
            label = self._fresh(base)
            return self._declare_elements(label, value)
        return value  # compile-time constants are not declared

    def _declare_leafed(self, label: str, value: Symbolic) -> Symbolic:
        """Declare an element assignment under a positional label."""
        if isinstance(value, (Event, CVal)):
            return self.program.declare(self._fresh(label), value)
        if isinstance(value, list):
            return self._declare_elements(self._fresh(label), value)
        return value

    def _declare_elements(self, label: str, values: list) -> list:
        declared: list = []
        for position, value in enumerate(values):
            if isinstance(value, (Event, CVal)):
                declared.append(
                    self.program.declare(f"{label}[{position}]", value)
                )
            elif isinstance(value, list):
                declared.append(
                    self._declare_elements(f"{label}[{position}]", value)
                )
            else:
                declared.append(value)
        return declared

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval_index(self, expr: Expr) -> int:
        value = self._translate_expr(expr)
        if isinstance(value, bool) or not isinstance(value, int):
            raise TranslationError(f"expected a compile-time integer, got {value!r}")
        return value

    def _translate_expr(self, expr: Expr) -> Symbolic:
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Name):
            if expr.id not in self.env:
                raise TranslationError(f"{expr.id!r} used before assignment")
            return self.env[expr.id]
        if isinstance(expr, Index):
            value = self.env.get(expr.base)
            if value is None:
                raise TranslationError(
                    f"array {expr.base!r} used before assignment"
                )
            for index_expr in expr.indices:
                if not isinstance(value, list):
                    raise TranslationError(f"{expr.base!r}: too many subscripts")
                value = value[self._eval_index(index_expr)]
            return value
        if isinstance(expr, ArrayInit):
            return [None] * self._eval_index(expr.size)
        if isinstance(expr, Compare):
            return self._translate_compare(expr)
        if isinstance(expr, BinOp):
            left = self._translate_expr(expr.left)
            right = self._translate_expr(expr.right)
            if _is_number(left) and _is_number(right):
                return left + right if expr.op == "+" else left * right
            if expr.op == "+":
                return csum([_as_cval(left), _as_cval(right)])
            return cprod([_as_cval(left), _as_cval(right)])
        if isinstance(expr, Call):
            return self._translate_call(expr)
        if isinstance(expr, Reduce):
            return self._translate_reduce(expr)
        if isinstance(expr, External):
            return _ingest(self._externals.resolve(expr.func))
        raise TranslationError(f"unknown expression {type(expr).__name__}")

    def _translate_compare(self, expr: Compare) -> Symbolic:
        left = self._translate_expr(expr.left)
        right = self._translate_expr(expr.right)
        if _is_number(left) and _is_number(right):
            return V.compare(expr.op, float(left), float(right))
        return atom(expr.op, _as_cval(left), _as_cval(right))

    def _translate_call(self, expr: Call) -> Symbolic:
        func = expr.func
        if func == "pow":
            base = _as_cval(self._translate_expr(expr.args[0]))
            exponent = self._eval_index(expr.args[1])
            return cpow(base, exponent)
        if func == "invert":
            return cinv(_as_cval(self._translate_expr(expr.args[0])))
        if func == "dist":
            return cdist(
                _as_cval(self._translate_expr(expr.args[0])),
                _as_cval(self._translate_expr(expr.args[1])),
            )
        if func == "scalar_mult":
            return cprod(
                [
                    _as_cval(self._translate_expr(expr.args[0])),
                    _as_cval(self._translate_expr(expr.args[1])),
                ]
            )
        if func in ("breakTies", "breakTies1", "breakTies2"):
            array = self._translate_expr(expr.args[0])
            if not isinstance(array, list):
                raise TranslationError(f"{func}() expects an array")
            return self._tie_break(func, array)
        raise TranslationError(f"unknown function {func}()")

    def _tie_break(self, func: str, array: list) -> list:
        if func == "breakTies":
            return tie_break_events([_as_event(element) for element in array])
        rows = [[_as_event(element) for element in row] for row in array]
        if func == "breakTies1":
            # Fix the first dimension, break ties along the second.
            return [tie_break_events(row) for row in rows]
        # breakTies2: fix the second dimension, break along the first.
        clusters = len(rows)
        objects = len(rows[0]) if clusters else 0
        columns = [
            tie_break_events([rows[i][l] for i in range(clusters)])
            for l in range(objects)
        ]
        return [[columns[l][i] for l in range(objects)] for i in range(clusters)]

    def _translate_reduce(self, expr: Reduce) -> Symbolic:
        kind = expr.kind
        if isinstance(expr.source, Comprehension):
            pairs = list(self._comprehension_pairs(expr.source))
        else:
            value = self._translate_expr(expr.source)
            if not isinstance(value, list):
                raise TranslationError("reduce expects an array")
            pairs = [(TRUE, element) for element in value]
        if kind == "reduce_and":
            return conj(
                disj([negate(cond_event), _as_event(element)])
                for cond_event, element in pairs
            )
        if kind == "reduce_or":
            return disj(
                conj([cond_event, _as_event(element)])
                for cond_event, element in pairs
            )
        if kind == "reduce_sum":
            return csum(
                cond(cond_event, _as_cval(element)) for cond_event, element in pairs
            )
        if kind == "reduce_mult":
            # Excluded factors must contribute the multiplicative identity:
            # (cond ∧ expr) + (¬cond ⊗ 1).
            return cprod(
                csum([cond(cond_event, _as_cval(element)),
                      guard(negate(cond_event), 1.0)])
                if cond_event is not TRUE
                else _as_cval(element)
                for cond_event, element in pairs
            )
        if kind == "reduce_count":
            return csum(guard(cond_event, 1.0) for cond_event, _ in pairs)
        raise TranslationError(f"unknown reduce kind {kind}")

    def _comprehension_pairs(self, comprehension: Comprehension):
        lower = self._eval_index(comprehension.lower)
        upper = self._eval_index(comprehension.upper)
        outer = self.env.get(comprehension.var, _MISSING)
        for counter in range(lower, upper):
            self.env[comprehension.var] = counter
            if comprehension.cond is None:
                cond_event: Event = TRUE
            else:
                translated = self._translate_expr(comprehension.cond)
                cond_event = _as_event(translated)
            if cond_event is FALSE:
                continue
            yield cond_event, self._translate_expr(comprehension.expr)
        if outer is _MISSING:
            self.env.pop(comprehension.var, None)
        else:
            self.env[comprehension.var] = outer


_MISSING = object()


def _is_number(value: Symbolic) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _as_cval(value: Symbolic) -> CVal:
    if isinstance(value, CVal):
        return value
    if _is_number(value):
        return literal(float(value))
    if isinstance(value, np.ndarray):
        return literal(value)
    raise TranslationError(f"expected a c-value, got {value!r}")


def _as_event(value: Symbolic) -> Event:
    if isinstance(value, Event):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise TranslationError(f"expected a Boolean event, got {value!r}")


def _ingest(value: Any) -> Symbolic:
    """Normalise externally supplied values into symbolic ones."""
    if isinstance(value, tuple):
        return tuple(_ingest(item) for item in value)
    if isinstance(value, list):
        return [_ingest(item) for item in value]
    if isinstance(value, np.ndarray):
        return literal(value)
    return value


def _ref_name(value: Symbolic) -> Optional[str]:
    from ..events.expressions import CRef, Ref

    if isinstance(value, (Ref, CRef)):
        return value.name
    return None


def translate_source(
    source: str,
    externals: TranslationExternals,
    validate: bool = True,
) -> Tuple[EventProgram, Translator]:
    """Parse, validate, and translate user source in one call."""
    program = parse_program(source)
    if validate:
        validate_program(program)
    translator = Translator(externals)
    translator.translate(program)
    return translator.program, translator
