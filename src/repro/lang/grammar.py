"""Abstract syntax of ENFrame's user language (paper, Figure 4).

The user language is a fragment of Python: declarations, bounded-range
for-loops, arithmetic and comparisons, ``reduce_*`` over anonymous arrays
built by list comprehension, tie-breaking, and the external calls
``loadData()`` / ``loadParams()`` / ``init()``.

This module defines the small AST the parser produces; it mirrors the
grammar productions LOOP / DECL / EXPR / LCOMPR / REDUCE / RANGE / COMP /
EXT of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

REDUCE_KINDS = ("reduce_and", "reduce_or", "reduce_sum", "reduce_mult", "reduce_count")
COMPARISONS = ("<", ">", "==", "<=", ">=")
EXTERNAL_CALLS = ("loadData", "loadParams", "init")
BREAK_TIES = ("breakTies", "breakTies1", "breakTies2")


class Expr:
    """Base class of user-language expressions."""


@dataclass(frozen=True)
class Lit(Expr):
    """A Boolean, integer, or float literal."""

    value: Union[bool, int, float]


@dataclass(frozen=True)
class Name(Expr):
    """A variable identifier."""

    id: str


@dataclass(frozen=True)
class Index(Expr):
    """An array subscript ``base[i_0]...[i_m]``."""

    base: str
    indices: Tuple[Expr, ...]


@dataclass(frozen=True)
class ArrayInit(Expr):
    """``[None] * size`` — array initialisation."""

    size: Expr


@dataclass(frozen=True)
class Compare(Expr):
    """``left op right`` with ``op`` one of ``< > == <= >=``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """``left + right`` or ``left * right``."""

    op: str  # "+" or "*"
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A builtin function call: pow/invert/dist/scalar_mult/breakTies*."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Comprehension(Expr):
    """``[expr for var in range(lo, hi) if cond]`` (cond optional)."""

    expr: Expr
    var: str
    lower: Expr
    upper: Expr
    cond: Optional[Expr]


@dataclass(frozen=True)
class Reduce(Expr):
    """``reduce_*(comprehension)`` or ``reduce_*(array_name)``."""

    kind: str
    source: Expr  # Comprehension or Name/Index of an array


@dataclass(frozen=True)
class External(Expr):
    """``loadData()`` / ``loadParams()`` / ``init()``."""

    func: str


class Stmt:
    """Base class of user-language statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` where target is a name or a subscript."""

    target: Union[Name, Index]
    expr: Expr
    line: int = 0


@dataclass(frozen=True)
class TupleAssign(Stmt):
    """``(a, b, ...) = externalCall()``."""

    names: Tuple[str, ...]
    call: External
    line: int = 0


@dataclass(frozen=True)
class For(Stmt):
    """``for var in range(lo, hi): body`` — a bounded-range loop."""

    var: str
    lower: Expr
    upper: Expr
    body: Tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class UserProgram:
    """A parsed user program: a sequence of statements."""

    statements: Tuple[Stmt, ...]
    source: str = ""
