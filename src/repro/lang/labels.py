"""The ``getLabel`` renaming scheme of Section 3.5 (Example 3).

The translation from the (mutable) user language to the (immutable)
event language renames each assignment of a variable ``M`` to a unique
event identifier whose lexicographic order reflects the sequence of
assignments.  The scheme establishes one counter per variable and per
nested block:

* an assignment within nested blocks is labelled by the block-entry
  label extended with the block-local counter (``M1.0``, ``M1.0.2``, …);
* on the first access of a variable inside a block, a *copy*
  declaration ``<entry>.-1 ≡ <entry>`` carries the outer value in;
* on leaving a block in which the variable was assigned, the last inner
  label is copied to the next outer counter.

This module implements the scheme on *grounded* (unrolled) programs:
loop counters are concrete, so the labels of Example 3 appear with
``i``/``j`` substituted (``M1.(2i)`` becomes ``M1.0``, ``M1.2``, …).
The generator is exercised by the test suite against the full
declaration sequence of Example 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class _Frame:
    """One block-nesting level of the label stack."""

    root: bool = False
    counters: Dict[str, int] = field(default_factory=dict)
    prefixes: Dict[str, str] = field(default_factory=dict)

    def label(self, variable: str, counter: int) -> str:
        if self.root:
            return f"{variable}{counter}"
        return f"{self.prefixes[variable]}.{counter}"


class LabelGenerator:
    """Grounded ``getLabel``: fresh identifiers plus copy declarations.

    ``declarations`` records every emitted copy declaration as a
    ``(label, source_label)`` pair, in program order; assignments are
    recorded by the caller using the labels returned by :meth:`assign`.
    """

    def __init__(self) -> None:
        self._stack: List[_Frame] = [_Frame(root=True)]
        self.copies: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------

    def enter_block(self) -> None:
        """Enter a loop-body block (called once per executed iteration)."""
        self._stack.append(_Frame())

    def exit_block(self) -> List[Tuple[str, str]]:
        """Leave the current block; returns the exit-copy declarations.

        Every variable assigned inside the block is copied to a fresh
        label of the enclosing block so the outer code sees its final
        value.
        """
        frame = self._stack.pop()
        emitted: List[Tuple[str, str]] = []
        for variable, counter in frame.counters.items():
            if counter <= 0:
                continue
            inner_label = frame.label(variable, counter - 1)
            outer_label = self.assign(variable)
            self.copies.append((outer_label, inner_label))
            emitted.append((outer_label, inner_label))
        return emitted

    # ------------------------------------------------------------------

    def _ensure_entry(self, variable: str, for_assignment: bool = False) -> None:
        """Emit the block-entry copy on first access inside a block.

        A *read* of a variable with no enclosing assignment is an error;
        an *assignment* of a variable born inside the block anchors its
        labels at a fresh root-level version (no copy to emit).
        """
        frame = self._stack[-1]
        if frame.root or variable in frame.prefixes:
            return
        try:
            outer_label = self._current_outer(variable)
        except KeyError:
            if not for_assignment:
                raise
            root = self._stack[0]
            counter = root.counters.get(variable, 0)
            root.counters[variable] = counter + 1
            frame.prefixes[variable] = root.label(variable, counter)
            frame.counters[variable] = 0
            return
        frame.prefixes[variable] = outer_label
        frame.counters[variable] = 0
        self.copies.append((f"{outer_label}.-1", outer_label))

    def _current_outer(self, variable: str) -> str:
        for frame in reversed(self._stack[:-1]):
            counter = frame.counters.get(variable, 0)
            if counter > 0:
                return frame.label(variable, counter - 1)
            if not frame.root and variable in frame.prefixes:
                return f"{frame.prefixes[variable]}.-1"
        raise KeyError(f"{variable!r} has no enclosing assignment")

    def assign(self, variable: str) -> str:
        """Fresh label for an assignment of ``variable`` in this block."""
        self._ensure_entry(variable, for_assignment=True)
        frame = self._stack[-1]
        counter = frame.counters.get(variable, 0)
        frame.counters[variable] = counter + 1
        return frame.label(variable, counter)

    def current(self, variable: str) -> str:
        """Label holding the latest value of ``variable`` (for reads)."""
        self._ensure_entry(variable)
        frame = self._stack[-1]
        counter = frame.counters.get(variable, 0)
        if counter > 0:
            return frame.label(variable, counter - 1)
        if not frame.root and variable in frame.prefixes:
            return f"{frame.prefixes[variable]}.-1"
        raise KeyError(f"{variable!r} read before assignment")


def example3_trace() -> List[Tuple[str, str]]:
    """Re-derive the declaration sequence of Example 3.

    Runs the label generator over the control flow of the example's user
    program (two assignments, a loop of two iterations containing one
    assignment and an inner loop of three iterations with one
    assignment, and a final assignment) and returns ``(label, rhs)``
    pairs where the right-hand side is rendered with the labels the
    generator produced.
    """
    generator = LabelGenerator()
    trace: List[Tuple[str, str]] = []

    def emit_copies() -> None:
        while generator.copies:
            trace.append(generator.copies.pop(0))

    # M = 7
    label = generator.assign("M")
    trace.append((label, "7"))
    # M = M + 2  (read before assign)
    rhs = generator.current("M")
    label = generator.assign("M")
    trace.append((label, f"{rhs} + 2"))
    # One block per *loop statement*: iterations share the block, so the
    # block counter advances across iterations (M1.0, M1.1, M1.2, ...).
    generator.enter_block()
    for i in range(2):
        # M = M + i
        rhs = generator.current("M")
        emit_copies()
        label = generator.assign("M")
        trace.append((label, f"{rhs} + {i}"))
        # The inner loop statement is executed anew in every outer
        # iteration, hence a fresh block (and entry copy) each time.
        generator.enter_block()
        for j in range(3):
            # M = M + 1
            rhs = generator.current("M")
            emit_copies()
            label = generator.assign("M")
            trace.append((label, f"{rhs} + 1"))
        generator.exit_block()
        emit_copies()
    generator.exit_block()
    emit_copies()
    # M = M + 1
    rhs = generator.current("M")
    label = generator.assign("M")
    trace.append((label, f"{rhs} + 1"))
    return trace
