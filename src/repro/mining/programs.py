"""The paper's example user programs (Figures 1, 2, 3), verbatim.

These are the user-language sources for k-medoids, k-means, and Markov
clustering exactly as printed in the paper (modulo whitespace).  They are
parsed by :mod:`repro.lang.parser`, executed deterministically by
:mod:`repro.lang.interpreter`, and translated to event programs by
:mod:`repro.lang.translate`.
"""

KMEDOIDS_SOURCE = """
(O, n) = loadData()
(k, iter) = loadParams()
M = init()
for it in range(0, iter):
    InCl = [None] * k
    for i in range(0, k):
        InCl[i] = [None] * n
        for l in range(0, n):
            InCl[i][l] = reduce_and(
                [(dist(O[l], M[i]) <= dist(O[l], M[j])) for j in range(0, k)])
    InCl = breakTies2(InCl)
    DistSum = [None] * k
    for i in range(0, k):
        DistSum[i] = [None] * n
        for l in range(0, n):
            DistSum[i][l] = reduce_sum(
                [dist(O[l], O[p]) for p in range(0, n) if InCl[i][p]])
    Centre = [None] * k
    for i in range(0, k):
        Centre[i] = [None] * n
        for l in range(0, n):
            Centre[i][l] = reduce_and(
                [DistSum[i][l] <= DistSum[i][p] for p in range(0, n)])
    Centre = breakTies1(Centre)
    M = [None] * k
    for i in range(0, k):
        M[i] = reduce_sum([O[l] for l in range(0, n) if Centre[i][l]])
"""

KMEANS_SOURCE = """
(O, n) = loadData()
(k, iter) = loadParams()
M = init()
for it in range(0, iter):
    InCl = [None] * k
    for i in range(0, k):
        InCl[i] = [None] * n
        for l in range(0, n):
            InCl[i][l] = reduce_and(
                [dist(O[l], M[i]) <= dist(O[l], M[j]) for j in range(0, k)])
    InCl = breakTies2(InCl)
    M = [None] * k
    for i in range(0, k):
        M[i] = scalar_mult(invert(
            reduce_count([1 for l in range(0, n) if InCl[i][l]])),
            reduce_sum([O[l] for l in range(0, n) if InCl[i][l]]))
"""

MCL_SOURCE = """
(O, n, M) = loadData()
(r, iter) = loadParams()
for it in range(0, iter):
    N = [None] * n
    for i in range(0, n):
        N[i] = [None] * n
        for j in range(0, n):
            N[i][j] = reduce_sum([M[i][k] * M[k][j] for k in range(0, n)])
    M = [None] * n
    for i in range(0, n):
        M[i] = [None] * n
        for j in range(0, n):
            M[i][j] = pow(N[i][j], r) * invert(
                reduce_sum([pow(N[i][k], r) for k in range(0, n)]))
"""
