"""K-means clustering: event-program builder and reference semantics.

Implements Figure 2 of the paper.  Unlike k-medoids, cluster centres are
*c-values*: the centroid of cluster ``i`` is the conditional expression

    ``M[it][i] = (Σ_l InCl[it][i][l] ∧ ⊤⊗1)^{-1} · (Σ_l InCl[it][i][l] ∧ O_l)``

— a random variable over possible cluster centroids, exponentially more
succinct than a purely Boolean encoding (Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.datasets import ProbabilisticDataset
from ..events import values as V
from ..events.expressions import (
    TRUE,
    atom,
    cdist,
    cinv,
    cond,
    conj,
    cprod,
    csum,
    guard,
)
from ..events.program import EventProgram, eid
from .ties import break_ties_2, tie_break_events


@dataclass(frozen=True)
class KMeansSpec:
    """Parameters of a k-means run."""

    k: int
    iterations: int = 3
    metric: str = "euclidean"
    init: Optional[Tuple[int, ...]] = None

    def initial_centroids(self, count: int) -> Tuple[int, ...]:
        if self.init is not None:
            if len(self.init) != self.k:
                raise ValueError("init must name exactly k objects")
            return self.init
        if self.k > count:
            raise ValueError("k exceeds the number of objects")
        return tuple(range(self.k))


def build_kmeans_program(
    dataset: ProbabilisticDataset, spec: KMeansSpec
) -> EventProgram:
    """Ground the k-means event program (Figure 2, right) for a dataset."""
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    k = spec.k
    program = EventProgram()
    init = spec.initial_centroids(n)

    phi = [program.declare_event(eid("Phi", l), dataset.events[l]) for l in range(n)]
    objects = [
        program.declare_cval(eid("O", l), guard(phi[l], dataset.points[l]))
        for l in range(n)
    ]
    centroids = [
        program.declare_cval(
            eid("Minit", i), guard(phi[init[i]], dataset.points[init[i]])
        )
        for i in range(k)
    ]

    for it in range(spec.iterations):
        dist_to = [
            [
                program.declare_cval(
                    eid("D", it, l, i), cdist(objects[l], centroids[i], spec.metric)
                )
                for i in range(k)
            ]
            for l in range(n)
        ]
        raw_incl = [
            [
                program.declare_event(
                    eid("InClRaw", it, i, l),
                    conj(
                        atom("<=", dist_to[l][i], dist_to[l][j])
                        for j in range(k)
                        if j != i
                    ),
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        incl = [[None] * n for _ in range(k)]
        for l in range(n):
            broken = tie_break_events(
                [raw_incl[i][l] for i in range(k)], [phi[l]] * k
            )
            for i in range(k):
                incl[i][l] = program.declare_event(eid("InCl", it, i, l), broken[i])

        # Update phase: centroid = (member count)^{-1} · (member sum).
        centroids = []
        for i in range(k):
            count = program.declare_cval(
                eid("Count", it, i),
                csum(cond(incl[i][l], guard(TRUE, 1.0)) for l in range(n)),
            )
            vector_sum = program.declare_cval(
                eid("Sum", it, i),
                csum(cond(incl[i][l], objects[l]) for l in range(n)),
            )
            centroids.append(
                program.declare_cval(
                    eid("M", it, i), cprod([cinv(count), vector_sum])
                )
            )

    return program


def kmeans_assignment_targets(
    program: EventProgram,
    k: int,
    n: int,
    last_iteration: int,
    objects: Optional[Sequence[int]] = None,
) -> List[str]:
    """Mark the final-iteration assignment events as targets."""
    chosen = range(n) if objects is None else objects
    names = []
    for i in range(k):
        for l in chosen:
            name = eid("InCl", last_iteration, i, l)
            program.add_target(name)
            names.append(name)
    return names


# ----------------------------------------------------------------------
# Reference semantics: k-means in one concrete world
# ----------------------------------------------------------------------


def kmeans_in_world(
    points: np.ndarray,
    present: Sequence[bool],
    spec: KMeansSpec,
) -> Dict[str, object]:
    """Run k-means in one world under the undefined-value semantics.

    Mirrors the user program of Figure 2: absent objects yield undefined
    distances (vacuously-true comparisons), empty clusters yield
    undefined centroids (``count^{-1} = u`` annihilates the product).
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    k = spec.k
    init = spec.initial_centroids(n)
    present = [bool(flag) for flag in present]

    def obj_value(l: int):
        return points[l] if present[l] else V.UNDEFINED

    centroids: List[object] = [obj_value(init[i]) for i in range(k)]
    incl: List[List[bool]] = [[False] * n for _ in range(k)]

    for _ in range(spec.iterations):
        dist_to = [
            [V.distance(obj_value(l), centroids[i], spec.metric) for i in range(k)]
            for l in range(n)
        ]
        raw = [
            [
                all(
                    V.compare("<=", dist_to[l][i], dist_to[l][j])
                    for j in range(k)
                    if j != i
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        eligible = [[raw[i][l] and present[l] for l in range(n)] for i in range(k)]
        incl = break_ties_2(eligible)

        centroids = []
        for i in range(k):
            count: object = V.UNDEFINED
            total: object = V.UNDEFINED
            for l in range(n):
                if incl[i][l]:
                    count = V.add(count, 1.0)
                    total = V.add(total, obj_value(l))
            centroids.append(V.multiply(V.invert(count), total))

    return {"incl": incl, "centroids": centroids}


def kmeans_deterministic(points: np.ndarray, spec: KMeansSpec) -> Dict[str, object]:
    """Plain k-means on certain data (every object present)."""
    return kmeans_in_world(points, [True] * len(points), spec)
