"""Distance measures shared by the deterministic and event encodings."""

from __future__ import annotations


import numpy as np

from ..events.values import DISTANCE_FUNCTIONS

METRICS = tuple(DISTANCE_FUNCTIONS)


def pairwise_distances(points: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dense ``(n, n)`` matrix of pairwise distances."""
    points = np.asarray(points, dtype=float)
    diff = points[:, None, :] - points[None, :, :]
    if metric == "euclidean":
        return np.sqrt(np.sum(diff**2, axis=2))
    if metric == "sqeuclidean":
        return np.sum(diff**2, axis=2)
    if metric == "manhattan":
        return np.sum(np.abs(diff), axis=2)
    raise ValueError(f"unknown distance metric {metric!r}")


def point_distance(left, right, metric: str = "euclidean") -> float:
    """Distance between two concrete points."""
    return DISTANCE_FUNCTIONS[metric](np.asarray(left), np.asarray(right))
