"""Mining algorithms: k-means, k-medoids, Markov clustering (Section 2.1)."""

from .distance import METRICS, pairwise_distances, point_distance
from .kmeans import (
    KMeansSpec,
    build_kmeans_program,
    kmeans_assignment_targets,
    kmeans_deterministic,
    kmeans_in_world,
)
from .kmedoids import (
    KMedoidsSpec,
    build_kmedoids_folded,
    build_kmedoids_program,
    kmedoids_deterministic,
    kmedoids_in_world,
)
from .markov import (
    MCLSpec,
    attraction_targets,
    build_mcl_program,
    mcl_in_world,
    stochastic_graph,
)
from .programs import KMEANS_SOURCE, KMEDOIDS_SOURCE, MCL_SOURCE
from .ties import break_ties, break_ties_1, break_ties_2, tie_break_events

__all__ = [
    "KMEANS_SOURCE",
    "KMEDOIDS_SOURCE",
    "KMeansSpec",
    "KMedoidsSpec",
    "MCLSpec",
    "MCL_SOURCE",
    "METRICS",
    "attraction_targets",
    "break_ties",
    "break_ties_1",
    "break_ties_2",
    "build_kmeans_program",
    "build_kmedoids_folded",
    "build_kmedoids_program",
    "build_mcl_program",
    "kmeans_assignment_targets",
    "kmeans_deterministic",
    "kmeans_in_world",
    "kmedoids_deterministic",
    "kmedoids_in_world",
    "mcl_in_world",
    "pairwise_distances",
    "point_distance",
    "stochastic_graph",
    "tie_break_events",
]
