"""Compilation-target factories for clustering event programs.

The platform computes probabilities for selected output events.  The
paper's experiments use *medoid selection* events as targets and note
that other target types (object–cluster assignment, pairwise
co-occurrence) behave very similarly.  These helpers mark the relevant
declared events of a built program as compilation targets.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..events.expressions import conj, disj, ref
from ..events.program import EventProgram, eid


def medoid_targets(
    program: EventProgram,
    k: int,
    n: int,
    last_iteration: int,
    objects: Optional[Sequence[int]] = None,
) -> List[str]:
    """Target ``Centre[last][i][l]``: object ``l`` is elected medoid of
    cluster ``i`` after the final iteration (the paper's default)."""
    chosen = range(n) if objects is None else objects
    names = []
    for i in range(k):
        for l in chosen:
            name = eid("Centre", last_iteration, i, l)
            program.add_target(name)
            names.append(name)
    return names


def assignment_targets(
    program: EventProgram,
    k: int,
    n: int,
    last_iteration: int,
    objects: Optional[Sequence[int]] = None,
) -> List[str]:
    """Target ``InCl[last][i][l]``: object ``l`` is assigned to cluster
    ``i`` after the final iteration."""
    chosen = range(n) if objects is None else objects
    names = []
    for i in range(k):
        for l in chosen:
            name = eid("InCl", last_iteration, i, l)
            program.add_target(name)
            names.append(name)
    return names


def cooccurrence_targets(
    program: EventProgram,
    k: int,
    last_iteration: int,
    pairs: Iterable[Tuple[int, int]],
) -> List[str]:
    """Target ``CoOccur[l][p]``: objects ``l`` and ``p`` end up in the
    same cluster (the motivating query of Example 1)."""
    names = []
    for l, p in pairs:
        name = eid("CoOccur", l, p)
        program.declare_event(
            name,
            disj(
                conj(
                    [
                        ref(eid("InCl", last_iteration, i, l)),
                        ref(eid("InCl", last_iteration, i, p)),
                    ]
                )
                for i in range(k)
            ),
        )
        program.add_target(name)
        names.append(name)
    return names


def is_medoid_targets(
    program: EventProgram,
    k: int,
    last_iteration: int,
    objects: Iterable[int],
) -> List[str]:
    """Target ``IsMedoid[l]``: object ``l`` is a medoid of *some* cluster."""
    names = []
    for l in objects:
        name = eid("IsMedoid", l)
        program.declare_event(
            name,
            disj(ref(eid("Centre", last_iteration, i, l)) for i in range(k)),
        )
        program.add_target(name)
        names.append(name)
    return names
