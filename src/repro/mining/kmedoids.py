"""K-medoids clustering: event-program builder and reference semantics.

Implements Figure 1 of the paper: the assignment phase picks, for every
object, the cluster with the nearest medoid (ties broken towards the
first cluster); the update phase sums, per candidate object, the
distances to all members of each cluster and elects the object
minimising that sum (ties broken towards the first object) as the new
medoid.

Two implementations are provided:

* :func:`build_kmedoids_program` — the symbolic *event program* of the
  right-hand side of Figure 1, defined over a probabilistic dataset.
* :func:`kmedoids_in_world` — a direct interpreter of the same semantics
  for one concrete world (a subset of present objects), including the
  undefined-value propagation rules.  This is the "golden standard" the
  paper compares against: clustering executed in every possible world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.datasets import ProbabilisticDataset
from ..events import values as V
from ..events.expressions import atom, cdist, cond, conj, csum, guard
from ..events.program import EventProgram, eid
from .distance import pairwise_distances
from .ties import break_ties_1, break_ties_2, tie_break_events


@dataclass(frozen=True)
class KMedoidsSpec:
    """Parameters of a k-medoids run (``loadParams()`` + ``init()``)."""

    k: int
    iterations: int = 3
    metric: str = "euclidean"
    init: Optional[Tuple[int, ...]] = None

    def initial_medoids(self, count: int) -> Tuple[int, ...]:
        """Initial medoid indices π(0..k-1); defaults to the first k."""
        if self.init is not None:
            if len(self.init) != self.k:
                raise ValueError("init must name exactly k objects")
            return self.init
        if self.k > count:
            raise ValueError("k exceeds the number of objects")
        return tuple(range(self.k))


def build_kmedoids_program(
    dataset: ProbabilisticDataset, spec: KMedoidsSpec
) -> EventProgram:
    """Ground the k-medoids event program (Figure 1, right) for a dataset.

    Declared names (``it`` is the iteration, ``i`` the cluster, ``l``/``p``
    objects):

    - ``Phi[l]`` — lineage event of object ``l``;
    - ``O[l] ≡ Phi[l] ⊗ o_l`` — the guarded input objects;
    - ``PD[l][p] ≡ dist(O[l], O[p])`` — pairwise object distances;
    - ``Minit[i]`` / ``M[it][i]`` — medoid c-values per iteration;
    - ``D[it][l][i] ≡ dist(O[l], M[it-1][i])`` — object-medoid distances;
    - ``InClRaw``/``InCl`` — assignment events before/after ``breakTies2``;
    - ``DistSum[it][i][l]`` — sums of member distances (update phase);
    - ``CentreRaw``/``Centre`` — medoid-election events before/after
      ``breakTies1`` (conjoined with object existence).
    """
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    k = spec.k
    program = EventProgram()
    init = spec.initial_medoids(n)

    phi = [program.declare_event(eid("Phi", l), dataset.events[l]) for l in range(n)]
    objects = [
        program.declare_cval(eid("O", l), guard(phi[l], dataset.points[l]))
        for l in range(n)
    ]
    # Pairwise distances between guarded objects are iteration-invariant.
    pairwise = [
        [
            program.declare_cval(
                eid("PD", l, p), cdist(objects[l], objects[p], spec.metric)
            )
            for p in range(n)
        ]
        for l in range(n)
    ]

    medoids = [
        program.declare_cval(
            eid("Minit", i), guard(phi[init[i]], dataset.points[init[i]])
        )
        for i in range(k)
    ]

    for it in range(spec.iterations):
        # Assignment phase: distances to the current medoids ...
        dist_to = [
            [
                program.declare_cval(
                    eid("D", it, l, i), cdist(objects[l], medoids[i], spec.metric)
                )
                for i in range(k)
            ]
            for l in range(n)
        ]
        # ... nearest-medoid events, ties broken towards the first cluster.
        raw_incl = [
            [
                program.declare_event(
                    eid("InClRaw", it, i, l),
                    conj(
                        atom("<=", dist_to[l][i], dist_to[l][j])
                        for j in range(k)
                        if j != i
                    ),
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        incl = [[None] * n for _ in range(k)]
        for l in range(n):
            broken = tie_break_events(
                [raw_incl[i][l] for i in range(k)], [phi[l]] * k
            )
            for i in range(k):
                incl[i][l] = program.declare_event(eid("InCl", it, i, l), broken[i])

        # Update phase: per-candidate sums of distances to cluster members.
        dist_sum = [
            [
                program.declare_cval(
                    eid("DistSum", it, i, l),
                    csum(cond(incl[i][p], pairwise[l][p]) for p in range(n)),
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        raw_centre = [
            [
                program.declare_event(
                    eid("CentreRaw", it, i, l),
                    conj(
                        atom("<=", dist_sum[i][l], dist_sum[i][p])
                        for p in range(n)
                        if p != l
                    ),
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        centre = [[None] * n for _ in range(k)]
        for i in range(k):
            broken = tie_break_events(raw_centre[i], [phi[l] for l in range(n)])
            for l in range(n):
                centre[i][l] = program.declare_event(eid("Centre", it, i, l), broken[l])

        medoids = [
            program.declare_cval(
                eid("M", it, i),
                csum(cond(centre[i][l], objects[l]) for l in range(n)),
            )
            for i in range(k)
        ]

    return program


def build_kmedoids_folded(dataset: ProbabilisticDataset, spec: KMedoidsSpec):
    """Folded k-medoids network (Section 4.2): one iteration template.

    The medoid c-values are loop-carried slots; the network size is
    independent of the iteration count, and compilation evaluates the
    template once per iteration with per-iteration masks.  Targets are
    the ``Centre`` election events at the final iteration, named
    identically to the unfolded builder's final-iteration targets.
    """
    from ..network.folded import FoldedBuilder, LoopCVal

    n = len(dataset)
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    k = spec.k
    init = spec.initial_medoids(n)
    builder = FoldedBuilder(spec.iterations)

    phi = list(dataset.events)
    objects = [guard(phi[l], dataset.points[l]) for l in range(n)]
    pairwise = [
        [cdist(objects[l], objects[p], spec.metric) for p in range(n)]
        for l in range(n)
    ]
    previous = [LoopCVal(eid("M", i)) for i in range(k)]

    dist_to = [
        [cdist(objects[l], previous[i], spec.metric) for i in range(k)]
        for l in range(n)
    ]
    raw_incl = [
        [
            conj(
                atom("<=", dist_to[l][i], dist_to[l][j])
                for j in range(k)
                if j != i
            )
            for l in range(n)
        ]
        for i in range(k)
    ]
    incl = [[None] * n for _ in range(k)]
    for l in range(n):
        broken = tie_break_events([raw_incl[i][l] for i in range(k)], [phi[l]] * k)
        for i in range(k):
            incl[i][l] = broken[i]
    dist_sum = [
        [
            csum(cond(incl[i][p], pairwise[l][p]) for p in range(n))
            for l in range(n)
        ]
        for i in range(k)
    ]
    raw_centre = [
        [
            conj(
                atom("<=", dist_sum[i][l], dist_sum[i][p])
                for p in range(n)
                if p != l
            )
            for l in range(n)
        ]
        for i in range(k)
    ]
    centre = [
        tie_break_events(raw_centre[i], [phi[l] for l in range(n)])
        for i in range(k)
    ]
    new_medoids = [
        csum(cond(centre[i][l], objects[l]) for l in range(n)) for i in range(k)
    ]

    for i in range(k):
        builder.define_slot(
            eid("M", i),
            init=guard(phi[init[i]], dataset.points[init[i]]),
            next_value=new_medoids[i],
        )
    last = spec.iterations - 1
    for i in range(k):
        for l in range(n):
            builder.add_target(eid("Centre", last, i, l), centre[i][l])
    return builder.folded


# ----------------------------------------------------------------------
# Reference semantics: k-medoids in one concrete world
# ----------------------------------------------------------------------


def kmedoids_in_world(
    points: np.ndarray,
    present: Sequence[bool],
    spec: KMedoidsSpec,
) -> Dict[str, object]:
    """Run k-medoids in one world under the undefined-value semantics.

    ``present[l]`` says whether object ``l`` exists in the world.  The
    result mirrors the user program of Figure 1 executed with the event
    semantics of Section 3.2 — absent objects contribute undefined
    values, comparisons against undefined are true, and tie-breaking is
    restricted to present objects.  Returns the final ``incl`` and
    ``centre`` Boolean matrices and the medoid values (vectors or ``u``).
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    k = spec.k
    init = spec.initial_medoids(n)
    present = [bool(flag) for flag in present]
    distances = pairwise_distances(points, spec.metric)

    def obj_value(l: int):
        return points[l] if present[l] else V.UNDEFINED

    medoids: List[object] = [obj_value(init[i]) for i in range(k)]
    incl: List[List[bool]] = [[False] * n for _ in range(k)]
    centre: List[List[bool]] = [[False] * n for _ in range(k)]

    for _ in range(spec.iterations):
        # Assignment phase.
        dist_to = [
            [V.distance(obj_value(l), medoids[i], spec.metric) for i in range(k)]
            for l in range(n)
        ]
        raw = [
            [
                all(
                    V.compare("<=", dist_to[l][i], dist_to[l][j])
                    for j in range(k)
                    if j != i
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        # breakTies2 with existence eligibility.
        eligible = [[raw[i][l] and present[l] for l in range(n)] for i in range(k)]
        incl = break_ties_2(eligible)

        # Update phase.
        dist_sum = [
            [
                _world_sum(
                    V.distance(obj_value(l), obj_value(p), spec.metric)
                    for p in range(n)
                    if incl[i][p]
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        raw_centre = [
            [
                all(
                    V.compare("<=", dist_sum[i][l], dist_sum[i][p])
                    for p in range(n)
                    if p != l
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        eligible_centre = [
            [raw_centre[i][l] and present[l] for l in range(n)] for i in range(k)
        ]
        centre = break_ties_1(eligible_centre)
        medoids = [
            _world_sum(obj_value(l) for l in range(n) if centre[i][l])
            for i in range(k)
        ]

    return {"incl": incl, "centre": centre, "medoids": medoids}


def _world_sum(values) -> object:
    total = V.UNDEFINED
    for value in values:
        total = V.add(total, value)
    return total


def kmedoids_deterministic(
    points: np.ndarray, spec: KMedoidsSpec
) -> Dict[str, object]:
    """Plain k-medoids on certain data (every object present)."""
    return kmedoids_in_world(points, [True] * len(points), spec)
