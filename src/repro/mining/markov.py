"""Markov clustering (MCL): event-program builder and reference semantics.

Implements Figure 3 of the paper: MCL simulates stochastic flow in a
graph by alternating *expansion* (matrix squaring — random walks of
higher length) and *inflation* (entry-wise Hadamard power followed by
row rescaling, as in the Figure-3 code), which boosts intra-cluster
walk probabilities.

Probabilistically, graph nodes carry lineage events; an edge exists in a
world when both endpoints do, so the initial flow matrix entries are
c-values guarded by the conjunction of the endpoint events.  After the
final iteration, the *attraction* atoms ``[M[i][j] >= threshold]`` are
natural compilation targets: "does the flow from node j to attractor i
persist?", which determines cluster membership in MCL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..events import values as V
from ..events.expressions import Event, atom, cinv, conj, cpow, cprod, csum, guard, literal
from ..events.program import EventProgram, eid


@dataclass(frozen=True)
class MCLSpec:
    """Parameters of a Markov-clustering run (``loadParams()``)."""

    inflation: int = 2
    iterations: int = 2


def build_mcl_program(
    weights: np.ndarray,
    node_events: Sequence[Event],
    spec: MCLSpec,
) -> EventProgram:
    """Ground the MCL event program (Figure 3, right).

    ``weights`` is the ``n x n`` row-stochastic matrix of edge weights
    between the ``n`` nodes; ``node_events`` their lineage.  Declares
    ``M[0][i][j]`` as the guarded initial flow and, per iteration,
    ``N[it][i][j]`` (expansion) and ``M[it+1][i][j]`` (inflation).
    """
    weights = np.asarray(weights, dtype=float)
    n = len(node_events)
    if weights.shape != (n, n):
        raise ValueError(f"weights must be {n}x{n} to match the node events")
    program = EventProgram()

    phi = [program.declare_event(eid("Phi", i), node_events[i]) for i in range(n)]
    flow = [
        [
            program.declare_cval(
                eid("M", 0, i, j),
                guard(conj([phi[i], phi[j]]), float(weights[i][j])),
            )
            for j in range(n)
        ]
        for i in range(n)
    ]

    for it in range(spec.iterations):
        # Expansion: N = M · M (random walks of doubled length).
        expanded = [
            [
                program.declare_cval(
                    eid("N", it, i, j),
                    csum(cprod([flow[i][p], flow[p][j]]) for p in range(n)),
                )
                for j in range(n)
            ]
            for i in range(n)
        ]
        # Inflation: Hadamard power + per-column rescaling.
        powered = [
            [
                program.declare_cval(
                    eid("P", it, i, j), cpow(expanded[i][j], spec.inflation)
                )
                for j in range(n)
            ]
            for i in range(n)
        ]
        # Rescaling follows the user program of Figure 3 verbatim: the
        # normaliser is the *row* sum Σ_k N[i][k]^r (the figure's text
        # speaks of columns, but its code fixes i and sums over k).
        row_sums = [
            program.declare_cval(
                eid("RowSum", it, i), csum(powered[i][p] for p in range(n))
            )
            for i in range(n)
        ]
        flow = [
            [
                program.declare_cval(
                    eid("M", it + 1, i, j),
                    cprod([powered[i][j], cinv(row_sums[i])]),
                )
                for j in range(n)
            ]
            for i in range(n)
        ]

    return program


def attraction_targets(
    program: EventProgram,
    n: int,
    last_iteration: int,
    threshold: float = 0.5,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[str]:
    """Target ``Attract[i][j]``: flow ``j → i`` is at least ``threshold``
    after the final iteration (node ``j`` belongs to attractor ``i``)."""
    chosen = (
        pairs if pairs is not None else [(i, j) for i in range(n) for j in range(n)]
    )
    names = []
    from ..events.expressions import cref

    for i, j in chosen:
        name = eid("Attract", i, j)
        program.declare_event(
            name,
            atom(
                ">=",
                cref(eid("M", last_iteration + 1, i, j)),
                literal(threshold),
            ),
        )
        program.add_target(name)
        names.append(name)
    return names


# ----------------------------------------------------------------------
# Reference semantics: MCL in one concrete world
# ----------------------------------------------------------------------


def mcl_in_world(
    weights: np.ndarray,
    present: Sequence[bool],
    spec: MCLSpec,
) -> List[List[object]]:
    """Run MCL in one world under the undefined-value semantics.

    Entries involving absent nodes are undefined; sums skip undefined
    terms (``u`` is the additive identity) and rescaling by an undefined
    row sum annihilates the row.  Returns the final flow matrix of
    values-or-``u``.
    """
    weights = np.asarray(weights, dtype=float)
    n = len(present)
    present = [bool(flag) for flag in present]
    flow: List[List[object]] = [
        [
            float(weights[i][j]) if present[i] and present[j] else V.UNDEFINED
            for j in range(n)
        ]
        for i in range(n)
    ]
    for _ in range(spec.iterations):
        expanded = [
            [
                _sum(V.multiply(flow[i][p], flow[p][j]) for p in range(n))
                for j in range(n)
            ]
            for i in range(n)
        ]
        powered = [
            [V.power(expanded[i][j], spec.inflation) for j in range(n)]
            for i in range(n)
        ]
        row_sums = [_sum(powered[i][p] for p in range(n)) for i in range(n)]
        flow = [
            [
                V.multiply(powered[i][j], V.invert(row_sums[i]))
                for j in range(n)
            ]
            for i in range(n)
        ]
    return flow


def _sum(values) -> object:
    total = V.UNDEFINED
    for value in values:
        total = V.add(total, value)
    return total


def stochastic_graph(
    n: int,
    rng,
    cluster_count: int = 2,
    intra_weight: float = 1.0,
    inter_weight: float = 0.1,
    self_loop: float = 0.5,
) -> np.ndarray:
    """A row-stochastic weight matrix with planted cluster structure.

    Nodes are split into ``cluster_count`` consecutive blocks; edges
    within a block are heavy, edges across blocks light — the structure
    MCL is designed to recover.
    """
    if n < cluster_count:
        raise ValueError("need at least one node per cluster")
    block = [index * cluster_count // n for index in range(n)]
    raw = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(n):
            if i == j:
                raw[i][j] = self_loop
            elif block[i] == block[j]:
                raw[i][j] = intra_weight * rng.uniform(0.5, 1.0)
            else:
                raw[i][j] = inter_weight * rng.uniform(0.0, 1.0)
    row_sums = raw.sum(axis=1, keepdims=True)
    return raw / row_sums
