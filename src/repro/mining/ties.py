"""Tie-breaking: deterministic semantics and event encodings (Section 2.2).

Clustering algorithms must break ties explicitly: ``breakTies2`` keeps,
for each object, only the first cluster claiming it; ``breakTies1``
keeps, for each cluster, only the first claimed object; ``breakTies``
keeps the first ``True`` of a one-dimensional array.

The event encodings additionally conjoin each candidate with an
*eligibility* event (typically the object's existence lineage ``Φ(o_l)``):
in the paper's event semantics, comparisons involving absent objects are
vacuously true, so without the eligibility conjunct an absent object
could win a tie that no world would give it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..events.expressions import TRUE, Event, conj, negate


def break_ties(row: Sequence[bool]) -> List[bool]:
    """Keep only the first ``True`` of a Boolean sequence."""
    result = [bool(value) for value in row]
    seen = False
    for index, value in enumerate(result):
        if value and seen:
            result[index] = False
        elif value:
            seen = True
    return result


def break_ties_2(matrix: Sequence[Sequence[bool]]) -> List[List[bool]]:
    """For each fixed second index (object), keep the first first-index
    (cluster) claiming it — the user-language ``breakTies2``."""
    clusters = len(matrix)
    objects = len(matrix[0]) if clusters else 0
    result = [[bool(value) for value in row] for row in matrix]
    for obj in range(objects):
        seen = False
        for cluster in range(clusters):
            if result[cluster][obj] and seen:
                result[cluster][obj] = False
            elif result[cluster][obj]:
                seen = True
    return result


def break_ties_1(matrix: Sequence[Sequence[bool]]) -> List[List[bool]]:
    """For each fixed first index (cluster), keep the first second-index
    (object) claiming it — the user-language ``breakTies1``."""
    return [break_ties(row) for row in matrix]


def tie_break_events(
    candidates: Sequence[Event],
    eligibility: Optional[Sequence[Event]] = None,
) -> List[Event]:
    """Event encoding of first-true-wins over a sequence of candidates.

    Returns events ``T_i = E_i ∧ C_i ∧ ¬(E_0 ∧ C_0) ∧ ... ∧ ¬(E_{i-1} ∧
    C_{i-1})`` where ``C_i`` are the candidate events and ``E_i`` the
    eligibility events (defaults to ``⊤``).  In every world, at most one
    ``T_i`` holds — the first eligible candidate.
    """
    if eligibility is None:
        eligibility = [TRUE] * len(candidates)
    if len(eligibility) != len(candidates):
        raise ValueError("eligibility must match candidates in length")
    eligible = [
        conj([gate, candidate])
        for gate, candidate in zip(eligibility, candidates)
    ]
    results: List[Event] = []
    for index, current in enumerate(eligible):
        blockers = [negate(earlier) for earlier in eligible[:index]]
        results.append(conj([current] + blockers))
    return results
