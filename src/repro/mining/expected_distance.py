"""Expected-distance clustering: the prior-art comparator (Section 6).

Most pre-ENFrame approaches to clustering uncertain data "define cluster
centroids using expected distances between data points … they also
compute hard clustering where the centroids are deterministic" and, the
paper stresses, ignore correlations — so "the output can be arbitrarily
off from the expected result" (Section 1).

This module implements that family faithfully so the claim can be
demonstrated: k-medoids driven by *expected* pairwise distances, where
the expectation treats each object independently via its marginal
existence probability, and the output is a single hard clustering.

The companion helpers quantify the gap against the possible-worlds
result: an expected-distance clusterer happily co-clusters two mutually
exclusive readings that no possible world ever sees together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..data.datasets import ProbabilisticDataset
from ..events.probability import event_probability
from .distance import pairwise_distances
from .kmedoids import KMedoidsSpec
from .ties import break_ties_2


def marginal_presence(dataset: ProbabilisticDataset) -> np.ndarray:
    """Per-object marginal existence probabilities (enumerated exactly)."""
    return np.array(
        [
            event_probability(event, dataset.pool)
            for event in dataset.events
        ]
    )


def expected_distance_matrix(dataset: ProbabilisticDataset,
                             metric: str = "euclidean") -> np.ndarray:
    """Expected pairwise distances under the independence assumption.

    The prior-art model: ``E[dist(o_l, o_p)] = P(o_l) · P(o_p) ·
    dist(o_l, o_p)`` with missing objects contributing zero — exactly
    the quantity a marginal-probability-weighted k-medoids consumes.
    Correlations between the events are *deliberately ignored*.
    """
    distances = pairwise_distances(dataset.points, metric)
    presence = marginal_presence(dataset)
    return distances * np.outer(presence, presence)


@dataclass
class HardClustering:
    """A deterministic clustering: assignments plus medoid indices."""

    assignments: List[int]  # cluster index per object
    medoids: List[int]  # object index per cluster

    def together(self, left: int, right: int) -> bool:
        return self.assignments[left] == self.assignments[right]


def expected_kmedoids(
    dataset: ProbabilisticDataset, spec: KMedoidsSpec
) -> HardClustering:
    """K-medoids over expected distances; hard, deterministic output."""
    n = len(dataset)
    k = spec.k
    expected = expected_distance_matrix(dataset, spec.metric)
    medoids = list(spec.initial_medoids(n))

    assignments = [0] * n
    for _ in range(spec.iterations):
        # Assignment phase on expected distances, first-cluster ties.
        raw = [
            [
                all(
                    expected[l][medoids[i]] <= expected[l][medoids[j]]
                    for j in range(k)
                    if j != i
                )
                for l in range(n)
            ]
            for i in range(k)
        ]
        incl = break_ties_2(raw)
        for l in range(n):
            for i in range(k):
                if incl[i][l]:
                    assignments[l] = i
        # Update phase: the member minimising the expected distance sum.
        for i in range(k):
            members = [l for l in range(n) if incl[i][l]]
            if not members:
                continue
            sums = [
                (sum(expected[l][p] for p in members), l) for l in range(n)
            ]
            medoids[i] = min(sums)[1]
    return HardClustering(assignments=assignments, medoids=medoids)


def correlation_violations(
    dataset: ProbabilisticDataset,
    clustering: HardClustering,
    threshold: float = 0.0,
) -> List[Tuple[int, int]]:
    """Co-clustered pairs that (almost) never co-exist.

    Returns pairs the hard clustering placed together although the
    probability of both objects existing is at most ``threshold`` —
    impossible (or nearly impossible) configurations the expected-
    distance model cannot see.  Under the possible-worlds semantics such
    pairs have co-occurrence probability at most ``threshold`` by
    construction.
    """
    from ..events.expressions import conj

    violations = []
    n = len(dataset)
    for left in range(n):
        for right in range(left + 1, n):
            if not clustering.together(left, right):
                continue
            joint = event_probability(
                conj([dataset.events[left], dataset.events[right]]), dataset.pool
            )
            if joint <= threshold:
                violations.append((left, right))
    return violations
