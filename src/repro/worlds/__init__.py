"""Possible worlds: random variables, enumeration, and the naive baseline."""

from .variables import Valuation, Variable, VariablePool, random_pool, total_valuations

__all__ = [
    "Valuation",
    "Variable",
    "VariablePool",
    "random_pool",
    "total_valuations",
]

from .naive import lineage_nodes, naive_probabilities, naive_probabilities_scalar

__all__ += ["lineage_nodes", "naive_probabilities", "naive_probabilities_scalar"]
