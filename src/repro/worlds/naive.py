"""The naive baseline: evaluate the program in every possible world.

The paper's baseline "computes an equivalent clustering by explicitly
iterating over all possible worlds" (Section 5, "Algorithms").  All
networks — flat and folded alike — route through the vectorized bulk
engine (:mod:`repro.engine.bulk`), which evaluates whole chunks of
worlds per network sweep (folded networks sweep their loop layer once
per iteration).  The original per-world recursive evaluator survives as
:func:`naive_probabilities_scalar`, kept purely as the cross-validation
oracle for the bulk engine.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compile.partial import B_TRUE
from ..compile.result import CompilationResult
from ..network.nodes import EventNetwork
from .variables import VariablePool


def naive_probabilities(
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]] = None,
    world_key_nodes: Optional[Sequence[int]] = None,
    timeout: Optional[float] = None,
    packed: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> CompilationResult:
    """Exact target probabilities by brute-force world enumeration.

    Evaluates all worlds at once through the bulk engine — flat networks
    in one sweep per chunk, folded networks with one loop-layer sweep
    per iteration (:class:`repro.engine.ir.FoldedFlatIR`); there is no
    scalar fallback.  ``world_key_nodes`` optionally names Boolean nodes
    (typically the input-object lineage events) whose joint outcome
    identifies a world; ``extra['distinct_worlds']`` then counts
    distinct signatures.  ``timeout`` (seconds) aborts the run; the
    result then carries partial sums and ``extra['timed_out'] = 1``.
    """
    from ..engine.bulk import bulk_naive_probabilities

    return bulk_naive_probabilities(
        network,
        pool,
        targets=targets,
        world_key_nodes=world_key_nodes,
        timeout=timeout,
        packed=packed,
        kernel=kernel,
    )


def naive_probabilities_scalar(
    network: EventNetwork,
    pool: VariablePool,
    targets: Optional[Sequence[str]] = None,
    world_key_nodes: Optional[Sequence[int]] = None,
    timeout: Optional[float] = None,
) -> CompilationResult:
    """The original recursive baseline: one network traversal per world.

    Valuations mapping to an already-seen ``world_key_nodes`` signature
    reuse the cached per-world result, mirroring how a naive
    implementation would cluster once per distinct world.  Kept as the
    cross-validation oracle for the bulk engine (it handles folded
    networks too, through the scalar folded evaluator).
    """
    # Imported here: the compiler package imports the network package,
    # which would close an import cycle at module-load time.
    from ..compile.compiler import make_evaluator

    names = list(targets) if targets is not None else list(network.targets)
    target_ids = [network.targets[name] for name in names]
    totals = {name: 0.0 for name in names}
    cache: Dict[Tuple[bool, ...], Tuple[bool, ...]] = {}
    # The scalar oracle deliberately drives the original recursive
    # evaluators (it resets their resolved maps per world by hand).
    evaluator = make_evaluator(network, engine="scalar")
    worlds = 0
    timed_out = False

    started = time.perf_counter()
    for valuation, mass in pool.iter_valuations():
        if timeout is not None and time.perf_counter() - started > timeout:
            timed_out = True
            break
        if mass == 0.0:
            continue
        worlds += 1
        evaluator.assignment = valuation
        memo: Dict[int, object] = {}
        signature: Optional[Tuple[bool, ...]] = None
        if world_key_nodes is not None:
            signature = tuple(
                evaluator.node_state(node_id, memo) == B_TRUE
                for node_id in world_key_nodes
            )
            cached = cache.get(signature)
            if cached is not None:
                for name, satisfied in zip(names, cached):
                    if satisfied:
                        totals[name] += mass
                evaluator.resolved = {}
                continue
        outcomes = tuple(
            evaluator.node_state(target_id, memo) == B_TRUE
            for target_id in target_ids
        )
        # The evaluator records fully-resolved states in its persistent map;
        # distinct valuations must not share them.
        evaluator.resolved = {}
        if signature is not None:
            cache[signature] = outcomes
        for name, satisfied in zip(names, outcomes):
            if satisfied:
                totals[name] += mass
    elapsed = time.perf_counter() - started

    bounds = {
        name: (totals[name], totals[name] if not timed_out else 1.0)
        for name in names
    }
    result = CompilationResult(
        bounds=bounds,
        scheme="naive",
        epsilon=0.0,
        seconds=elapsed,
        tree_nodes=worlds,
    )
    result.extra["distinct_worlds"] = float(len(cache)) if cache else float(worlds)
    result.extra["timed_out"] = 1.0 if timed_out else 0.0
    return result


def lineage_nodes(network: EventNetwork, names: Iterable[str]) -> List[int]:
    """Node ids of named lineage events (for world signatures)."""
    return [network.names[name] for name in names]
