"""Boolean random variables and the probability space they induce.

ENFrame models uncertainty with a finite set ``X`` of independent Boolean
random variables (paper, Section 3.3).  A :class:`VariablePool` owns the
variables together with their marginal probabilities.  A *valuation*
``nu: X -> {true, false}`` is represented as a ``dict`` mapping variable
indices to booleans; total valuations define *possible worlds* with
probability ``Pr(nu) = prod_x P_x[nu(x)]`` (Definition 1 in the paper).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Valuation = Dict[int, bool]


@dataclass(frozen=True)
class Variable:
    """A Boolean random variable: an index into a pool plus a name."""

    index: int
    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


class VariablePool:
    """A finite set of independent Boolean random variables.

    Each variable carries the marginal probability of being ``True``.
    Variables are identified by dense integer indices, which the rest of
    the system (event expressions, networks, compilation) uses directly.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._probs: List[float] = []

    def __len__(self) -> int:
        return len(self._names)

    def add(self, probability: float = 0.5, name: Optional[str] = None) -> int:
        """Register a fresh variable and return its index."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        index = len(self._names)
        self._names.append(name if name is not None else f"x{index}")
        self._probs.append(float(probability))
        return index

    def add_many(self, probabilities: Iterable[float]) -> List[int]:
        """Register several variables at once; returns their indices."""
        return [self.add(p) for p in probabilities]

    def probability(self, index: int, value: bool = True) -> float:
        """Marginal probability ``P_x[value]`` of variable ``index``."""
        p_true = self._probs[index]
        return p_true if value else 1.0 - p_true

    def name(self, index: int) -> str:
        return self._names[index]

    def set_probability(self, index: int, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._probs[index] = float(probability)

    @property
    def probabilities(self) -> Tuple[float, ...]:
        return tuple(self._probs)

    def indices(self) -> range:
        return range(len(self._names))

    # ------------------------------------------------------------------
    # Probability space induced by the pool (Definition 1).
    # ------------------------------------------------------------------

    def valuation_probability(self, valuation: Valuation) -> float:
        """``Pr(nu)`` of a *total* valuation under variable independence."""
        prob = 1.0
        for index in self.indices():
            prob *= self.probability(index, valuation[index])
        return prob

    def partial_probability(self, valuation: Valuation) -> float:
        """Probability mass of the set of worlds extending ``valuation``."""
        prob = 1.0
        for index, value in valuation.items():
            prob *= self.probability(index, value)
        return prob

    def iter_valuations(self) -> Iterator[Tuple[Valuation, float]]:
        """Yield every total valuation together with its probability.

        There are ``2^len(pool)`` valuations; callers are expected to keep
        pools small (this powers the naive baseline and the testing
        oracle, not the production algorithms).
        """
        indices = list(self.indices())
        for bits in itertools.product((True, False), repeat=len(indices)):
            valuation = dict(zip(indices, bits))
            yield valuation, self.valuation_probability(valuation)

    def sample_valuation(self, rng: random.Random) -> Valuation:
        """Draw a total valuation from the induced distribution."""
        return {
            index: rng.random() < self._probs[index] for index in self.indices()
        }


def random_pool(
    count: int,
    rng: random.Random,
    low: float = 0.5,
    high: float = 0.8,
) -> VariablePool:
    """Pool of ``count`` variables with probabilities uniform in [low, high].

    The paper draws marginals uniformly from [0.5, 0.8] so that clustering
    event probabilities are not trivially close to 0 or 1 (Section 5,
    "Uncertainty").
    """
    pool = VariablePool()
    for _ in range(count):
        pool.add(rng.uniform(low, high))
    return pool


def total_valuations(
    pool: VariablePool, over: Optional[Sequence[int]] = None
) -> Iterator[Tuple[Valuation, float]]:
    """Yield valuations over a subset of variables with their mass.

    When ``over`` is given, only those variables are enumerated; the
    returned probability is the mass of the corresponding *set* of worlds.
    """
    if over is None:
        yield from pool.iter_valuations()
        return
    indices = list(over)
    for bits in itertools.product((True, False), repeat=len(indices)):
        valuation = dict(zip(indices, bits))
        yield valuation, pool.partial_probability(valuation)
