"""Interactive what-if sessions over compiled event networks."""

from .whatif import WhatIfSession

__all__ = ["WhatIfSession"]
