"""Incremental what-if sessions: edit evidence, re-query only what moved.

A :class:`WhatIfSession` holds one long-lived masked evaluator for a
network and lets the caller interleave evidence edits with conditional
queries:

* :meth:`assert_evidence` pushes one variable assignment as a trailed
  evaluator frame — the masked engine re-sweeps only that variable's
  influence cone (:meth:`MaskedProgram.var_cone`), not the whole
  network;
* :meth:`retract` pops the assignment back off the trail (rewinding
  and replaying the newer frames when the retracted variable is not
  the most recent one);
* :meth:`set_probability` rewrites a variable's marginal in place —
  evaluator state is assignment-driven, so nothing needs re-sweeping,
  but cached answers downstream of the variable go stale;
* :meth:`query` recomputes bounds by Shannon expansion *on top of* the
  standing evidence frames, and only for the targets whose influence
  cones intersect the variables edited since they were last answered —
  clean targets are answered from the session cache without touching
  the engine.

Because the pool's variables are independent, a DFS started at mass
``1.0`` above the evidence prefix enumerates exactly the conditional
distribution given that prefix: the bounds are ``P(target | evidence)``
with no renormalisation step (the one-pass ``Φ ∧ C`` division of
:mod:`repro.engine.conditioning` is only needed for *event*-level
evidence, which a session does not assert).

Works on flat and folded networks and across every kernel tier: the
dirty-cone bookkeeping reads node-level cones from the evaluator's
program (``_prog.cone_source``) and falls back to conservatively
dirtying everything for the scalar oracle evaluators, which expose no
cones.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..compile.compiler import SCHEMES, ShannonCompiler
from ..compile.result import CompilationResult
from ..network.nodes import EventNetwork
from ..worlds.variables import VariablePool


class WhatIfSession:
    """Interactive conditioning over one network and variable pool.

    ``order`` and ``kernel`` parameterise the underlying compiler
    exactly as in :func:`repro.engine.registry.normalise_options`; the
    default frequency order breaks ties towards low variable indices,
    which keeps re-queries after an edit localised when the network's
    variable groups are index-contiguous.
    """

    def __init__(
        self,
        network: EventNetwork,
        pool: VariablePool,
        targets: Optional[Sequence[str]] = None,
        order: "str | Sequence[int]" = "frequency",
        kernel: Optional[str] = None,
    ) -> None:
        self.network = network
        self.pool = pool
        self._compiler = ShannonCompiler(
            network, pool, targets=targets, order=order, kernel=kernel
        )
        self.target_names: Tuple[str, ...] = tuple(self._compiler.target_names)
        self._target_set = set(self.target_names)
        self._evidence: List[Tuple[int, bool]] = []
        self._bounds: Dict[str, Tuple[float, float]] = {}
        self._clean: set = set()
        self._query_key: Tuple[str, float] = ("exact", 0.0)
        self._cones: Dict[int, Optional[FrozenSet[int]]] = {}
        self.recomputed = 0  # targets the last query() re-expanded

    # ------------------------------------------------------------------
    # Evidence edits
    # ------------------------------------------------------------------

    @property
    def evidence(self) -> Tuple[Tuple[int, bool], ...]:
        """The standing evidence, in assertion order."""
        return tuple(self._evidence)

    def assert_evidence(self, variable: int, value: bool = True) -> None:
        """Observe ``variable == value``; one trailed evaluator frame."""
        if not 0 <= variable < len(self.pool):
            raise ValueError(
                f"variable {variable} is not in the pool "
                f"(size {len(self.pool)})"
            )
        if any(existing == variable for existing, _ in self._evidence):
            raise ValueError(
                f"variable {variable} is already asserted; retract it first"
            )
        self._compiler.evaluator.push(variable, bool(value))
        self._evidence.append((variable, bool(value)))
        self._dirty(variable)

    def retract(self, variable: Optional[int] = None) -> Tuple[int, bool]:
        """Withdraw one assertion (the most recent one by default).

        Retracting below the top of the trail rewinds to the retracted
        frame and replays the newer assertions — their cones were swept
        on the way down and are swept again on replay, but targets
        outside the *retracted* variable's cone stay clean.
        """
        if not self._evidence:
            raise ValueError("no evidence to retract")
        evaluator = self._compiler.evaluator
        if variable is None:
            variable = self._evidence[-1][0]
        position = next(
            (
                index
                for index, (existing, _) in enumerate(self._evidence)
                if existing == variable
            ),
            None,
        )
        if position is None:
            raise ValueError(f"variable {variable} is not asserted")
        removed = self._evidence[position]
        replay = self._evidence[position + 1 :]
        evaluator.rewind_to(position)
        for index, value in replay:
            evaluator.push(index, value)
        self._evidence = self._evidence[:position] + replay
        self._dirty(variable)
        return removed

    def set_probability(self, variable: int, probability: float) -> None:
        """Rewrite a marginal; answers in the variable's cone go stale."""
        self.pool.set_probability(variable, probability)
        self._dirty(variable)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        targets: Optional[Sequence[str]] = None,
        scheme: str = "exact",
        epsilon: float = 0.0,
    ) -> CompilationResult:
        """Conditional bounds ``P(target | evidence)`` per target.

        Any Shannon scheme works; switching ``(scheme, epsilon)``
        between queries drops the session cache (answers certified
        under one contract cannot back answers under another).
        ``result.extra["recomputed_targets"]`` reports how many targets
        actually re-expanded — the session's incrementality measure.
        """
        names = list(targets) if targets is not None else list(self.target_names)
        unknown = [name for name in names if name not in self._target_set]
        if unknown:
            raise ValueError(
                f"unknown targets {unknown!r}; session targets are "
                f"{list(self.target_names)!r}"
            )
        if scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of {SCHEMES}"
            )
        if scheme == "exact" and epsilon != 0.0:
            raise ValueError("exact compilation requires epsilon == 0")
        if scheme != "exact" and epsilon <= 0.0:
            raise ValueError(f"scheme {scheme!r} requires a positive epsilon")
        key = (scheme, float(epsilon))
        if key != self._query_key:
            self._query_key = key
            self._clean.clear()
        dirty = [name for name in names if name not in self._clean]
        started = time.perf_counter()
        tree_nodes = 0
        evals = 0
        max_depth = 0
        if dirty:
            tree_nodes, evals, max_depth = self._recompute(dirty, scheme, epsilon)
        elapsed = time.perf_counter() - started
        self.recomputed = len(dirty)
        result = CompilationResult(
            bounds={name: self._bounds[name] for name in names},
            scheme=scheme,
            epsilon=epsilon,
            seconds=elapsed,
            tree_nodes=tree_nodes,
            evals=evals,
            max_depth=max_depth,
        )
        result.extra["recomputed_targets"] = float(len(dirty))
        result.extra["evidence_depth"] = float(len(self._evidence))
        tier = getattr(self._compiler.evaluator, "kernel", None)
        if tier is not None:
            from ..engine.kernels import KERNEL_TIER_CODES

            result.extra["kernel_tier"] = KERNEL_TIER_CODES.get(tier, -1.0)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _cone(self, variable: int) -> Optional[FrozenSet[int]]:
        """Node-level influence cone, or ``None`` when the evaluator
        exposes no cones (scalar oracles) and everything must go stale."""
        if variable in self._cones:
            return self._cones[variable]
        prog = getattr(self._compiler.evaluator, "_prog", None)
        cone: Optional[FrozenSet[int]] = None
        if prog is not None:
            cone = frozenset(
                int(node_id)
                for node_id in prog.cone_source.var_cone(variable)
            )
        self._cones[variable] = cone
        return cone

    def _dirty(self, variable: int) -> None:
        cone = self._cone(variable)
        if cone is None:
            self._clean.clear()
            return
        for name in self.target_names:
            if self.network.targets[name] in cone:
                self._clean.discard(name)

    def _recompute(
        self, names: List[str], scheme: str, epsilon: float
    ) -> Tuple[int, int, int]:
        """Shannon-expand the dirty targets above the evidence prefix.

        Drives the compiler's ``_dfs`` directly instead of ``run()``:
        ``run()`` insists on a balanced evaluator and would rebuild it,
        discarding the standing evidence frames this session exists to
        keep.
        """
        compiler = self._compiler
        evaluator = compiler.evaluator
        base_depth = evaluator.depth
        evals_before = evaluator.evals
        compiler._lower = {name: 0.0 for name in names}
        compiler._upper = {name: 1.0 for name in names}
        compiler._scheme = scheme
        compiler._epsilon = epsilon
        compiler._tree_nodes = 0
        compiler._max_depth = 0
        compiler._finished = set()
        compiler._global_budget = {name: 2.0 * epsilon for name in names}
        budgets = {name: 2.0 * epsilon for name in names}
        evaluator.push()
        try:
            compiler._dfs(1.0, list(names), budgets)
        finally:
            evaluator.rewind_to(base_depth)
        for name in names:
            self._bounds[name] = (compiler._lower[name], compiler._upper[name])
            self._clean.add(name)
        return (
            compiler._tree_nodes,
            evaluator.evals - evals_before,
            compiler._max_depth,
        )
