"""barrier-determinism: the distributed compiler stays order-stable.

The PR 5 design: every distributed job is a pure function of its
creation message, and all scheduling decisions happen at generation
barriers in creation order, so ``simulate``/``threads``/``process``
execution produces identical trees and bounds.  PR 8 adds the socket
transport and in-generation work stealing: steal decisions (victim
selection, queue ordering) and the framed wire protocol live in
``compile/transport.py`` and must obey the same discipline — a steal
policy that consults wall clocks or set order would assign jobs
nondeterministically, and although merges stay creation-ordered, the
property tests could no longer pin down *which* worker computed what.
That guarantee dies the moment job creation, stealing, or result
merging consults a nondeterministic source.  This rule scans
``compile/distributed.py`` and ``compile/transport.py`` for the
syntactic forms that smuggle nondeterminism in:

* unseeded randomness: ``import random``, ``uuid`` imports,
  ``os.urandom(...)``;
* wall-clock ordering: ``time.time()`` / ``time.time_ns()``
  (``perf_counter``/``monotonic`` stay legal — they feed *reported*
  costs and deadlines, never tree shape);
* set-order iteration: ``for x in {...}`` / ``set(...)`` /
  ``frozenset(...)`` / set comprehensions (iterate ``sorted(...)``
  instead), and ``.pop()`` on a set literal (an arbitrary element).

Known blind spot: iterating a *variable* bound to a set is not tracked
(no dataflow); ``tests/property/test_process_mode.py`` catches the
resulting divergence at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Finding, Rule, SourceFile, register_rule

TARGET_FILES = frozenset(
    {
        "src/repro/compile/distributed.py",
        "src/repro/compile/transport.py",
    }
)

BANNED_IMPORTS = ("random", "uuid")
BANNED_CALLS = {
    ("time", "time"): "wall-clock time.time() can reorder jobs",
    ("time", "time_ns"): "wall-clock time.time_ns() can reorder jobs",
    ("os", "urandom"): "os.urandom() is nondeterministic",
    ("uuid", "uuid4"): "uuid.uuid4() is nondeterministic",
}


def _set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class BarrierDeterminismRule(Rule):
    name = "barrier-determinism"
    description = (
        "no unseeded randomness, wall-clock ordering, or set-order "
        "iteration in the distributed job-creation/steal/merge paths"
    )
    hint = (
        "job creation, steal decisions, and result merges must be pure "
        "functions of the creation messages: sort before iterating, use "
        "perf_counter/monotonic for costs and deadlines, never "
        "wall-clock or random sources; see docs/ARCHITECTURE.md, "
        "'Enforced invariants'"
    )

    def applies(self, relpath: str) -> bool:
        return relpath in TARGET_FILES

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_IMPORTS:
                        findings.append(
                            self.finding(
                                source,
                                node.lineno,
                                "import of nondeterministic module "
                                f"{alias.name!r}",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in BANNED_IMPORTS:
                    findings.append(
                        self.finding(
                            source,
                            node.lineno,
                            f"import from nondeterministic module {root!r}",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and (func.value.id, func.attr) in BANNED_CALLS
                ):
                    findings.append(
                        self.finding(
                            source,
                            node.lineno,
                            BANNED_CALLS[(func.value.id, func.attr)],
                        )
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and _set_expression(func.value)
                ):
                    findings.append(
                        self.finding(
                            source,
                            node.lineno,
                            "pop() from a set removes an arbitrary element",
                        )
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _set_expression(node.iter):
                    findings.append(
                        self.finding(
                            source,
                            node.lineno,
                            "iteration over a set is order-unstable; "
                            "iterate sorted(...) instead",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if _set_expression(comp.iter):
                        findings.append(
                            self.finding(
                                source,
                                node.lineno,
                                "comprehension over a set is order-unstable; "
                                "iterate sorted(...) instead",
                            )
                        )
        return findings


RULE = register_rule(BarrierDeterminismRule())
