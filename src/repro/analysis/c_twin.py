"""c-twin-drift: the Python kernel and its C twin move in lockstep.

``engine/kernels.py`` keeps ONE sweep algorithm in three executable
forms: :func:`_masked_sweep` (run interpreted and handed to
``numba.njit`` verbatim) and a statement-for-statement C translation
inside ``_C_TEMPLATE`` (compiled with the system compiler, driven via
ctypes).  The runtime guard — per-process self-validation on a canned
walk — only samples behaviour; an edit to one side that the canned walk
does not reach ships silently.  This rule makes the correspondence a
static invariant: both sides are normalised into a stream of
*observable events* and the streams must be identical.

Event vocabulary (shared by both extractors):

* ``FOR`` / ``BREAK`` / ``CONTINUE`` / ``RETURN`` — control structure;
* ``R:name`` / ``W:name`` — subscripted reads/writes of the kernel's
  array parameters (the Python function's parameter names; C pointer
  aliases like ``dst = matrix + ...`` are mapped back to the array);
* ``OP:+ - * / % pow neg ~ & | ^`` — arithmetic/bitwise operators
  (``x++``/``x += 1`` both normalise to ``OP:+``; ``pow(a, b)`` and
  ``a ** b`` both to ``OP:pow``);
* ``L:and`` / ``L:or`` — short-circuit connectives (``and``/``&&``,
  ``or``/``||``);
* ``CMP:== != < <= > >=`` — comparisons, EXCEPT equality against a
  literal zero.

The zero-equality exception is the normalisation workhorse: Python
spells emptiness/falseness ``x == 0`` where C spells it ``!x`` or bare
truthiness, so all three forms erase to just the operand's events.
Ordering comparisons (``<``/``<=``/``>``/``>=``) have no bang-spelling
and stay strict even against zero.
Symmetrically erased: ``if``/``else``/ternary structure (Python
``if``/``elif`` chains correspond to C ternaries), ``not``/``!``,
local-variable reads and writes, C type names and casts, and both
loop headers (``range(...)`` arguments and C ``for (...;...;...)``).

``_masked_sweep`` ↔ ``masked_sweep`` are compared strictly, event for
event.  ``_packed_segments`` ↔ ``packed_eval`` differ structurally (the
C side uses pointer-stride aliases), so they are compared on a coarse
fingerprint: per-array read/write counts, loop count, and bitwise
operator counts.

Documented blind spots: an ``==`` flipped to ``!=`` against a literal
zero, edits confined to a loop header, and renames among local
variables do not move either stream; the property suite and the
per-process self-validation remain the oracle for those.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .core import Finding, ProjectRule, SourceFile, register_rule

KERNELS_PATH = "src/repro/engine/kernels.py"

Event = Tuple[str, int]  # (event, source line)

_BINOP_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.Mod: "%",
    ast.Pow: "pow",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.FloorDiv: "//",
    ast.LShift: "<<",
    ast.RShift: ">>",
}

_CMP_SYMBOLS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


def _is_zero(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


class _PyStream:
    """Normalised event stream of one Python kernel function."""

    def __init__(self, arrays: Iterable[str]) -> None:
        self.arrays = set(arrays)
        self.events: List[Event] = []

    def emit(self, event: str, line: int) -> None:
        self.events.append((event, line))

    # -- statements -----------------------------------------------------

    def body(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.stmt(statement)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # Loop headers are erased on both sides: range(...) bounds
            # have no statement-level C counterpart (init/test/step).
            self.emit("FOR", node.lineno)
            self.body(node.body)
            self.body(node.orelse)
        elif isinstance(node, ast.While):
            self.emit("WHILE", node.lineno)
            self.expr(node.test)
            self.body(node.body)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            self.body(node.body)
            self.body(node.orelse)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self.store(target)
            self.expr(node.value)
        elif isinstance(node, ast.AnnAssign):
            self.store(node.target)
            if node.value is not None:
                self.expr(node.value)
        elif isinstance(node, ast.AugAssign):
            symbol = _BINOP_SYMBOLS.get(type(node.op), "?")
            if isinstance(node.target, ast.Subscript):
                self.store(node.target)
                self.load_subscript(node.target)
                self.emit(f"OP:{symbol}", node.lineno)
                self.expr(node.value)
            else:
                # Local compound assign: C spells it x++ / x op= v.
                self.emit(f"OP:{symbol}", node.lineno)
                self.expr(node.value)
        elif isinstance(node, ast.Expr):
            if not isinstance(node.value, ast.Constant):  # skip docstrings
                self.expr(node.value)
        elif isinstance(node, ast.Return):
            self.emit("RETURN", node.lineno)
            if node.value is not None:
                self.expr(node.value)
        elif isinstance(node, ast.Break):
            self.emit("BREAK", node.lineno)
        elif isinstance(node, ast.Continue):
            self.emit("CONTINUE", node.lineno)
        elif isinstance(node, ast.Pass):
            pass
        else:
            self.emit(f"STMT:{type(node).__name__}", node.lineno)

    # -- expressions ----------------------------------------------------

    def store(self, node: ast.expr) -> None:
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Name) and value.id in self.arrays:
                self.emit(f"W:{value.id}", node.lineno)
            self.expr(node.slice)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.store(element)
        # Name targets are locals: erased.

    def load_subscript(self, node: ast.Subscript) -> None:
        value = node.value
        if isinstance(value, ast.Name) and value.id in self.arrays:
            self.emit(f"R:{value.id}", node.lineno)
        self.expr(node.slice)

    def expr(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp):
            connective = "and" if isinstance(node.op, ast.And) else "or"
            self.expr(node.values[0])
            for value in node.values[1:]:
                self.emit(f"L:{connective}", node.lineno)
                self.expr(value)
        elif isinstance(node, ast.BinOp):
            self.expr(node.left)
            self.emit(f"OP:{_BINOP_SYMBOLS.get(type(node.op), '?')}", node.lineno)
            self.expr(node.right)
        elif isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                self.emit("OP:neg", node.lineno)
            elif isinstance(node.op, ast.Invert):
                self.emit("OP:~", node.lineno)
            # `not` and unary + are erased.
            self.expr(node.operand)
        elif isinstance(node, ast.Compare):
            self.expr(node.left)
            previous: ast.expr = node.left
            for op, comparator in zip(node.ops, node.comparators):
                erased = isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_zero(previous) or _is_zero(comparator)
                )
                if not erased:
                    symbol = _CMP_SYMBOLS.get(type(op))
                    if symbol is not None:
                        self.emit(f"CMP:{symbol}", node.lineno)
                self.expr(comparator)
                previous = comparator
        elif isinstance(node, ast.IfExp):
            # Emitted in C ternary order: test, then, else.
            self.expr(node.test)
            self.expr(node.body)
            self.expr(node.orelse)
        elif isinstance(node, ast.Subscript):
            self.load_subscript(node)
        elif isinstance(node, ast.Call):
            # Calls in kernel code are constructors/casts (np.uint64):
            # the callee is erased, arguments keep their events.
            for argument in node.args:
                self.expr(argument)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.expr(element)
        elif isinstance(node, (ast.Name, ast.Constant, ast.Attribute)):
            pass  # locals / literals / attribute reads: erased
        else:
            self.emit(f"EXPR:{type(node).__name__}", node.lineno)


def python_events(function: ast.FunctionDef) -> List[Event]:
    arrays = [argument.arg for argument in function.args.args]
    stream = _PyStream(arrays)
    stream.body(function.body)
    return stream.events


# ----------------------------------------------------------------------
# The C side: a line-oriented tokenizer plus a linear event scanner.
# ----------------------------------------------------------------------

_C_TOKEN = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"
    r"|\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+"
    r"|&&|\|\||==|!=|<=|>=|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<|>>|->"
    r"|[-+*/%<>=!~&|^?:;,.(){}\[\]]"
)

_C_TYPE_WORDS = frozenset(
    {
        "void", "int", "char", "short", "long", "float", "double",
        "signed", "unsigned", "const", "static", "inline",
        "int8_t", "int16_t", "int32_t", "int64_t",
        "uint8_t", "uint16_t", "uint32_t", "uint64_t", "size_t",
    }
)

_C_COMPARISONS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_C_COMPOUND_ASSIGN = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^",
}
#: Tokens after which an operator must be unary (no left operand).
_C_OPERAND_END = frozenset({")", "]", "++", "--"})


def _is_zero_token(token: Optional[str]) -> bool:
    if token is None:
        return False
    try:
        return float(token) == 0.0
    except ValueError:
        return False


def c_tokenize(text: str, start_line: int = 1) -> List[Tuple[str, int]]:
    """Tokenize C source, erasing preprocessor lines and comments.

    The template's ``str.format`` escapes are resolved first: ``{{``/
    ``}}`` become braces and ``{NAME}`` placeholders become the bare
    identifier ``NAME`` (so kind-code comparisons keep an identifier
    operand on both sides, exactly like the Python constants).
    """
    tokens: List[Tuple[str, int]] = []
    in_block_comment = False
    for offset, raw_line in enumerate(text.split("\n")):
        line_number = start_line + offset
        line = raw_line
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + " " + line[end + 2:]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        line = re.sub(r"\{([A-Za-z_][A-Za-z0-9_]*)\}", r"\1", line)
        line = line.replace("{{", "{ ").replace("}}", " }")
        if line.lstrip().startswith("#"):
            continue
        for match in _C_TOKEN.finditer(line):
            tokens.append((match.group(0), line_number))
    return tokens


def _matching(tokens: Sequence[Tuple[str, int]], start: int, open_token: str,
              close_token: str) -> int:
    """Index of the token closing the bracket opened at ``start``."""
    depth = 0
    for index in range(start, len(tokens)):
        token = tokens[index][0]
        if token == open_token:
            depth += 1
        elif token == close_token:
            depth -= 1
            if depth == 0:
                return index
    raise ValueError(f"unbalanced {open_token!r} at token {start}")


def extract_c_function(
    tokens: Sequence[Tuple[str, int]], name: str
) -> List[Tuple[str, int]]:
    """The body tokens (inside the outer braces) of one C function."""
    for index in range(len(tokens) - 1):
        if tokens[index][0] == name and tokens[index + 1][0] == "(":
            close = _matching(tokens, index + 1, "(", ")")
            if close + 1 >= len(tokens) or tokens[close + 1][0] != "{":
                continue  # a call, not a definition
            end = _matching(tokens, close + 1, "{", "}")
            return list(tokens[close + 2:end])
    raise ValueError(f"C function {name!r} not found")


def c_pointer_aliases(text: str, arrays: Iterable[str]) -> Dict[str, str]:
    """``{alias: array}`` for pointer-stride declarations in C text."""
    aliases: Dict[str, str] = {}
    wanted = set(arrays)
    for match in re.finditer(r"\*\s*(\w+)\s*=\s*(\w+)\s*\+", text):
        alias, base = match.group(1), match.group(2)
        if base in wanted:
            aliases[alias] = base
    return aliases


class _CStream:
    """Normalised event stream of one C function body."""

    def __init__(self, arrays: Iterable[str], aliases: Mapping[str, str]) -> None:
        self.arrays = set(arrays)
        self.aliases = dict(aliases)
        self.events: List[Event] = []

    def emit(self, event: str, line: int) -> None:
        self.events.append((event, line))

    def _array_name(self, token: str) -> Optional[str]:
        if token in self.arrays:
            return token
        return self.aliases.get(token)

    def scan(self, tokens: Sequence[Tuple[str, int]]) -> None:
        index = 0
        previous: Optional[str] = None
        while index < len(tokens):
            token, line = tokens[index]
            if token == "for":
                self.emit("FOR", line)
                if index + 1 < len(tokens) and tokens[index + 1][0] == "(":
                    index = _matching(tokens, index + 1, "(", ")") + 1
                    previous = ")"
                    continue
            elif token == "while":
                self.emit("WHILE", line)
            elif token == "return":
                self.emit("RETURN", line)
            elif token == "break":
                self.emit("BREAK", line)
            elif token == "continue":
                self.emit("CONTINUE", line)
            elif token in ("if", "else", "do"):
                pass
            elif token in _C_TYPE_WORDS:
                pass
            elif re.match(r"[A-Za-z_]", token):
                array = self._array_name(token)
                if (
                    array is not None
                    and index + 1 < len(tokens)
                    and tokens[index + 1][0] == "["
                ):
                    close = _matching(tokens, index + 1, "[", "]")
                    following = (
                        tokens[close + 1][0] if close + 1 < len(tokens) else None
                    )
                    if following == "=":
                        self.emit(f"W:{array}", line)
                    elif following in _C_COMPOUND_ASSIGN:
                        self.emit(f"W:{array}", line)
                        self.emit(f"R:{array}", line)
                    elif following in ("++", "--"):
                        self.emit(f"W:{array}", line)
                        self.emit(f"R:{array}", line)
                    else:
                        self.emit(f"R:{array}", line)
                    self.scan(tokens[index + 2:close])
                    index = close + 1
                    previous = "]"
                    continue
                if token == "pow" and index + 1 < len(tokens) \
                        and tokens[index + 1][0] == "(":
                    self.emit("OP:pow", line)
            elif token == "&&":
                self.emit("L:and", line)
            elif token == "||":
                self.emit("L:or", line)
            elif token in _C_COMPARISONS:
                before = tokens[index - 1][0] if index > 0 else None
                after = tokens[index + 1][0] if index + 1 < len(tokens) else None
                erased = token in ("==", "!=") and (
                    _is_zero_token(before) or _is_zero_token(after)
                )
                if not erased:
                    self.emit(f"CMP:{token}", line)
            elif token in ("++", "--"):
                self.emit(f"OP:{token[0]}", line)
            elif token in _C_COMPOUND_ASSIGN:
                self.emit(f"OP:{_C_COMPOUND_ASSIGN[token]}", line)
            elif token == "~":
                self.emit("OP:~", line)
            elif token in ("+", "-", "*", "/", "%", "&", "|", "^"):
                unary = not (
                    previous is not None
                    and (
                        re.match(r"[A-Za-z_0-9.]", previous)
                        and previous not in ("return",)
                        or previous in _C_OPERAND_END
                    )
                )
                if unary:
                    if token == "-":
                        self.emit("OP:neg", line)
                    # unary +, * (deref), & (address-of): erased
                elif token in ("/",) or token in ("+", "-", "*", "%", "&", "|", "^"):
                    self.emit(f"OP:{token}", line)
            # =, !, ?, :, ;, ,, (, ), {, }, ., numbers: erased
            previous = token
            index += 1


def c_events(
    tokens: Sequence[Tuple[str, int]],
    arrays: Iterable[str],
    aliases: Optional[Mapping[str, str]] = None,
) -> List[Event]:
    stream = _CStream(arrays, aliases or {})
    stream.scan(tokens)
    return stream.events


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

COARSE_OPS = ("OP:~", "OP:&", "OP:|")


def coarse_fingerprint(events: Iterable[Event]) -> Counter:
    """Order-insensitive counts: loops, array R/W, bitwise operators."""
    counts: Counter = Counter()
    for event, _line in events:
        if (
            event == "FOR"
            or event.startswith("R:")
            or event.startswith("W:")
            or event in COARSE_OPS
        ):
            counts[event] += 1
    return counts


def compare_strict(
    py: Sequence[Event], c: Sequence[Event], label: str
) -> List[Tuple[int, str]]:
    """First divergence between two event streams, with both anchors."""
    for index in range(min(len(py), len(c))):
        if py[index][0] != c[index][0]:
            py_event, py_line = py[index]
            c_event, c_line = c[index]
            context = " ".join(event for event, _ in py[max(0, index - 3):index])
            return [
                (
                    py_line,
                    f"{label}: event #{index + 1} diverges — Python has "
                    f"{py_event!r} (line {py_line}) where C has {c_event!r} "
                    f"(line {c_line}); preceding events: [{context}]. "
                    "One side was edited without the other.",
                )
            ]
    if len(py) != len(c):
        if len(py) > len(c):
            extra_event, extra_line = py[len(c)]
            side = "Python"
        else:
            extra_event, extra_line = c[len(py)]
            side = "C"
        return [
            (
                extra_line,
                f"{label}: streams agree for {min(len(py), len(c))} events, "
                f"then the {side} side continues with {extra_event!r} "
                f"(line {extra_line}) — a statement exists on one side only.",
            )
        ]
    return []


def compare_coarse(
    py: Sequence[Event], c: Sequence[Event], label: str, anchor_line: int
) -> List[Tuple[int, str]]:
    py_counts = coarse_fingerprint(py)
    c_counts = coarse_fingerprint(c)
    if py_counts == c_counts:
        return []
    differences = []
    for key in sorted(set(py_counts) | set(c_counts)):
        if py_counts[key] != c_counts[key]:
            differences.append(
                f"{key}: Python×{py_counts[key]} vs C×{c_counts[key]}"
            )
    return [
        (
            anchor_line,
            f"{label}: coarse fingerprints differ ({'; '.join(differences)}). "
            "One side was edited without the other.",
        )
    ]


def check_kernel_twins(source_text: str) -> List[Tuple[int, str]]:
    """All drift diagnostics for one ``engine/kernels.py`` source text."""
    try:
        tree = ast.parse(source_text)
    except SyntaxError as exc:
        return [(exc.lineno or 1, f"kernels module does not parse: {exc.msg}")]

    functions: Dict[str, ast.FunctionDef] = {}
    template: Optional[ast.Constant] = None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_C_TEMPLATE"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    template = node.value

    problems: List[Tuple[int, str]] = []
    if "_masked_sweep" not in functions:
        problems.append((1, "Python kernel _masked_sweep not found"))
    if "_packed_segments" not in functions:
        problems.append((1, "Python kernel _packed_segments not found"))
    if template is None:
        problems.append((1, "C template _C_TEMPLATE not found"))
    if problems:
        return [
            (line, message + " — the drift detector needs updating "
             "alongside structural kernel changes")
            for line, message in problems
        ]

    c_text = template.value
    tokens = c_tokenize(c_text, start_line=template.lineno)

    sweep_fn = functions["_masked_sweep"]
    sweep_arrays = [argument.arg for argument in sweep_fn.args.args]
    try:
        sweep_body = extract_c_function(tokens, "masked_sweep")
    except ValueError as exc:
        return [(template.lineno, f"{exc} in _C_TEMPLATE")]
    problems.extend(
        compare_strict(
            python_events(sweep_fn),
            c_events(sweep_body, sweep_arrays),
            "_masked_sweep vs C masked_sweep",
        )
    )

    packed_fn = functions["_packed_segments"]
    packed_arrays = [argument.arg for argument in packed_fn.args.args]
    try:
        packed_body = extract_c_function(tokens, "packed_eval")
    except ValueError as exc:
        return problems + [(template.lineno, f"{exc} in _C_TEMPLATE")]
    aliases = c_pointer_aliases(c_text, packed_arrays)
    problems.extend(
        compare_coarse(
            python_events(packed_fn),
            c_events(packed_body, packed_arrays, aliases),
            "_packed_segments vs C packed_eval",
            packed_fn.lineno,
        )
    )
    return problems


class CTwinRule(ProjectRule):
    name = "c-twin-drift"
    description = (
        "the Python kernel (_masked_sweep/_packed_segments) and its C "
        "twin (_C_TEMPLATE) correspond statement for statement"
    )
    hint = (
        "engine/kernels.py keeps one algorithm in three forms (python/"
        "numba source and the C template); apply the same edit to both "
        "sides, then re-run `repro check` and the kernel property suite"
    )

    def applies(self, relpath: str) -> bool:
        return relpath == KERNELS_PATH

    def check_project(
        self, root: str, files: Mapping[str, SourceFile]
    ) -> Iterable[Finding]:
        source = files.get(KERNELS_PATH)
        if source is None:
            return [
                Finding(
                    rule=self.name,
                    path=KERNELS_PATH,
                    line=1,
                    message="engine/kernels.py is missing from the checked tree",
                    hint=self.hint,
                )
            ]
        return [
            self.finding(source, line, message)
            for line, message in check_kernel_twins(source.text)
        ]


RULE = register_rule(CTwinRule())
