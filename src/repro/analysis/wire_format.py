"""wire-format: patches stay plain-scalar across evaluator tiers.

Column patches (:meth:`MaskedEvaluator.export_patch`) are the
cross-process wire format of the distributed compiler: trail slices
pickled between workers.  Kernel evaluators store their columns as
NumPy arrays, so a raw column read (``self._b[vid]``) is a NumPy scalar
— it pickles, but it is not byte-identical to the Python evaluator's
plain ``int``/``float``/``bool`` payloads, it resurrects NumPy on the
receiving side, and equality-sensitive consumers (patch interop tests,
cross-tier handoffs) see the difference.  PR 6 papered over this with a
normalising override; the normalisation now lives in the base walk
(``_plain_values``), and this rule keeps raw column reads out of the
emitted tuples for good.

PR 8 extends the same wire format across machines: the socket
transport (``compile/transport.py``) pickles job messages and patch
frames onto TCP streams, so the plain-scalar invariant is now a
cross-machine compatibility contract, not just a cross-process one.
The rule therefore also covers ``compile/transport.py`` and
``compile/distributed.py``, and additionally checks any function whose
name starts with ``_wire`` (the transport's payload builders).

Checked functions: any ``export_patch``, ``_plain_values``, functions
named ``_wire*``, and ``__iter__`` of ``*Frame`` classes (kernel trail
frames yield wire-compatible tuples).  Inside them, a tuple/list
element that reads a state column (``_b``/``_lo``/``_hi``/``_mu``/
``_md`` attributes, or the bare ``b``/``lo``/``hi``/``mu``/``md`` slots
of a frame) must be wrapped in ``int()``/``float()``/``bool()``.
``_vec`` payloads are :class:`NumState` objects by design and are
exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Finding, FunctionStackVisitor, Rule, SourceFile, register_rule

SCALAR_COLUMNS = frozenset({"_b", "_lo", "_hi", "_mu", "_md"})
FRAME_SLOTS = frozenset({"b", "lo", "hi", "mu", "md"})
CASTS = frozenset({"int", "float", "bool"})


def _raw_column_read(node: ast.expr) -> "str | None":
    """The column name when ``node`` reads a state column uncast."""
    if not isinstance(node, ast.Subscript):
        return None
    value = node.value
    if isinstance(value, ast.Attribute) and value.attr in SCALAR_COLUMNS:
        return value.attr
    if (
        isinstance(value, ast.Attribute)
        and value.attr in FRAME_SLOTS
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return value.attr
    return None


class _Visitor(FunctionStackVisitor):
    def __init__(self, rule: "WireFormatRule", source: SourceFile) -> None:
        super().__init__()
        self.rule = rule
        self.source = source
        self.findings: List[Finding] = []

    def _in_wire_function(self) -> bool:
        name = self.function
        if name in ("export_patch", "_plain_values"):
            return True
        if name.startswith("_wire"):
            return True
        return name == "__iter__" and "Frame" in self.class_name

    def _check_elements(self, elements: Iterable[ast.expr]) -> None:
        for element in elements:
            column = _raw_column_read(element)
            if column is not None:
                self.findings.append(
                    self.rule.finding(
                        self.source,
                        element.lineno,
                        f"raw column read {column!r} in a wire-format "
                        "payload leaks NumPy scalars on kernel tiers",
                    )
                )

    def visit_Tuple(self, node: ast.Tuple) -> None:
        if self._in_wire_function():
            self._check_elements(node.elts)
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        if self._in_wire_function():
            self._check_elements(node.elts)
        self.generic_visit(node)


class WireFormatRule(Rule):
    name = "wire-format"
    description = (
        "export_patch payloads are plain Python scalars: no raw column "
        "reads (NumPy scalar leakage) in wire-format tuples"
    )
    hint = (
        "wrap the read in int()/float()/bool() (or route it through "
        "_plain_values) so patches pickle identically across tiers"
    )

    def applies(self, relpath: str) -> bool:
        if relpath.startswith("src/repro/engine/"):
            return True
        return relpath in (
            "src/repro/compile/transport.py",
            "src/repro/compile/distributed.py",
        )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        visitor = _Visitor(self, source)
        visitor.visit(source.tree)
        return visitor.findings


RULE = register_rule(WireFormatRule())
