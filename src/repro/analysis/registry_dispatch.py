"""registry-dispatch: one dispatch point for probability schemes.

The ROADMAP standing rule: new schemes plug into
``repro.engine.registry`` and every entry point — the platform facade,
the CLI, the distributed compiler, the benchmark harness — dispatches
through :func:`repro.engine.registry.run_scheme` instead of hard-coding
``if scheme == ...`` chains.  Two mechanically checkable halves:

* ``repro.engine.schemes`` (the built-in scheme runners) is imported by
  exactly one module, the registry itself.  Anything else importing it
  is wiring around the dispatch point.
* The entry-point modules (``cli.py``, ``__main__.py``,
  ``core/platform.py``, and everything under ``repro.serve`` — the
  query service answers arbitrary scheme requests, so the whole
  package is an entry surface) must not import scheme *implementations*
  (compilers, world enumeration, Monte Carlo, the evaluator engines);
  they talk to ``repro.engine.registry`` only.  Option-name constants
  (``compile.ordering.ORDER_NAMES``, ``engine.kernels.KERNEL_NAMES``)
  are deliberately not banned — they parameterise dispatch, they do not
  bypass it.

Benchmarks that measure compiler/evaluator *internals* (ablations over
``compile_network`` and friends) are in scope only for the first half:
the harness's end-to-end path (``benchmarks/common.py``) already runs
through the registry.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Finding, Rule, SourceFile, register_rule, resolve_import

#: The one module allowed to import the built-in scheme runners.
SCHEMES_MODULE = "repro.engine.schemes"
SCHEMES_IMPORTER = "src/repro/engine/registry.py"

#: Entry-point modules that must stay implementation-free.
ENTRY_FILES = frozenset(
    {
        "src/repro/cli.py",
        "src/repro/__main__.py",
        "src/repro/core/platform.py",
    }
)

#: Entry-point *packages*: every module under these prefixes is an
#: entry point.  The service layer answers arbitrary scheme queries, so
#: all of it must dispatch through the registry; the pc-table substrate
#: (``repro.db``) reaches conditioning through the ``exact-cond`` /
#: ``lazy-cond`` schemes and may not import compilers directly either.
ENTRY_PREFIXES = ("src/repro/serve/", "src/repro/db/")

#: Scheme-implementation modules banned from the entry points.
IMPLEMENTATION_MODULES = (
    "repro.compile.compiler",
    "repro.compile.distributed",
    "repro.compile.montecarlo",
    "repro.compile.partial",
    "repro.compile.folded_eval",
    "repro.worlds.naive",
    "repro.engine.bulk",
    "repro.engine.masked",
    "repro.engine.packed",
)


def _hits(module: str, banned: str) -> bool:
    return module == banned or module.startswith(banned + ".")


class RegistryDispatchRule(Rule):
    name = "registry-dispatch"
    description = (
        "schemes are reached through repro.engine.registry: nothing but "
        "the registry imports repro.engine.schemes, and the CLI/facade "
        "entry points import no scheme implementations"
    )
    hint = (
        "dispatch through repro.engine.registry.run_scheme (or register the "
        "scheme with register_scheme); see ROADMAP.md's standing rule"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        is_entry = source.path in ENTRY_FILES or source.path.startswith(
            ENTRY_PREFIXES
        )
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for module, line in resolve_import(source.path, node):
                if (
                    _hits(module, SCHEMES_MODULE)
                    and source.path != SCHEMES_IMPORTER
                ):
                    findings.append(
                        self.finding(
                            source,
                            line,
                            f"import of {SCHEMES_MODULE} outside the "
                            "registry bypasses scheme dispatch",
                        )
                    )
                    break
                if is_entry and any(
                    _hits(module, banned) for banned in IMPLEMENTATION_MODULES
                ):
                    findings.append(
                        self.finding(
                            source,
                            line,
                            "entry point imports scheme implementation "
                            f"{module!r} instead of dispatching through "
                            "the registry",
                        )
                    )
                    break
        return findings


RULE = register_rule(RegistryDispatchRule())
