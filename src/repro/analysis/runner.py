"""``repro check``: run the repository's invariant lints.

Exit status is the contract: 0 when every rule passes (CI gates on it),
1 when any finding survives the suppression filter, 2 on usage errors.
``--inject-violation`` runs the rules over a deliberately broken
in-memory module and *must* exit 1 — CI uses it to prove the gate can
fail, the same way the bench-regression job proves itself with
``--inject-slowdown``.
"""

from __future__ import annotations

import argparse
import os
from typing import Iterable, List, Optional

from .core import (
    Finding,
    ProjectRule,
    Rule,
    load_rules,
    run_check,
    source_from_text,
    suppressed,
)

#: A virtual module violating several rules at once; used by
#: ``--inject-violation`` to prove the gate exits non-zero.
_INJECTED_PATH = "src/repro/engine/_injected_violation.py"
_INJECTED_TEXT = '''\
"""Deliberately broken module for `repro check --inject-violation`."""

import numba  # kernel-hygiene: compiled tier outside kernels.py


class BrokenEvaluator:
    def export_patch(self, base):
        # wire-format: raw column reads leak NumPy scalars
        return [(0, 7, self._b[7]), (1, 9, self._lo[9], self._hi[9])]

    def poke(self, vid):
        # trail-discipline: column write outside the trail protocol
        self._b[vid] = 1
'''


def find_root(start: Optional[str] = None) -> str:
    """The repository root: nearest ancestor holding ``pyproject.toml``."""
    here = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isfile(os.path.join(here, "pyproject.toml")):
            return here
        parent = os.path.dirname(here)
        if parent == here:
            return os.path.abspath(start or os.getcwd())
        here = parent


def injected_findings(rules: Iterable[Rule]) -> List[Finding]:
    """Findings from running the per-file rules over the broken module."""
    source = source_from_text(_INJECTED_PATH, _INJECTED_TEXT)
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule) or not rule.applies(source.path):
            continue
        for finding in rule.check(source):
            if not suppressed(source, finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="restrict per-file rules to these repo-relative files "
        "(project-wide rules always run over the full tree)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--inject-violation",
        action="store_true",
        help="also lint a deliberately broken virtual module; used by CI "
        "to prove the gate can fail (must exit 1)",
    )


def handle(args: argparse.Namespace) -> int:
    rules = load_rules()
    if args.list_rules:
        for rule in rules:
            kind = "project" if isinstance(rule, ProjectRule) else "file"
            print(f"{rule.name} ({kind}): {rule.description}")
        return 0

    root = args.root if args.root is not None else find_root()
    if not os.path.isdir(root):
        print(f"repro check: root {root!r} is not a directory")
        return 2
    paths: Optional[List[str]] = None
    if args.paths:
        paths = [
            os.path.relpath(os.path.abspath(p), root).replace(os.sep, "/")
            if os.path.exists(p)
            else p.replace(os.sep, "/")
            for p in args.paths
        ]

    findings = run_check(root, paths=paths)
    if args.inject_violation:
        injected = injected_findings(rules)
        if not injected:
            print(
                "repro check: --inject-violation produced no findings; "
                "the gate cannot prove it fails"
            )
            return 2
        findings = findings + injected

    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro check: {len(findings)} finding(s)")
        return 1
    print(f"repro check: clean ({len(rules)} rules)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check", description=__doc__.splitlines()[0]
    )
    add_arguments(parser)
    return handle(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
