"""trail-discipline: masked-evaluator state columns go through the trail.

The PR 3 bug class: distributed job replay wrote masked-evaluator
columns directly (``evaluator._b[vid] = ...``), skipping the trail, so
``pop`` could not restore the state and workers silently diverged.  The
fix routed every prefix replay through ``push(variable, value)``; this
rule keeps it that way by flagging any assignment (or deletion) that
targets a masked state column —

    ``_b  _lo  _hi  _mu  _md  _resolved  _dirty  _vec  _assign``

or subscripts of an ``assignment`` attribute — outside the trail
protocol (``__init__``/``push``/``pop``/``apply_patch``/``rewind_to``
plus ``_KFrame.restore``).  The evaluator implementation modules
(``engine/masked.py``, ``engine/kernels.py``) additionally allow their
internal sweep/write-back helpers, which trail every write themselves.

Known blind spot: writes through a local alias (``col = self._b;
col[vid] = ...``) are not tracked; none exist outside the implementation
modules today, and the property suites catch the resulting divergence at
runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Finding, FunctionStackVisitor, Rule, SourceFile, register_rule

#: Masked-evaluator state columns (list storage in the Python evaluator,
#: NumPy arrays in the kernel evaluator — same attribute names).
COLUMNS = frozenset(
    {"_b", "_lo", "_hi", "_mu", "_md", "_resolved", "_dirty", "_vec", "_assign"}
)

#: The trail protocol: functions allowed to write columns anywhere.
PROTOCOL_FUNCTIONS = frozenset(
    {"__init__", "push", "pop", "apply_patch", "rewind_to", "restore"}
)

#: Implementation-internal writers, valid only inside their own module
#: (each trails its writes or is called exclusively under ``push``).
IMPLEMENTATION_EXTRA = {
    "src/repro/engine/masked.py": frozenset(
        {"_sweep_cone", "_recompute", "_write_num", "_write_num_scalar"}
    ),
    "src/repro/engine/kernels.py": frozenset({"_sweep_kernel"}),
}


def _column_target(node: ast.expr) -> "tuple[str, int] | None":
    """``(column, line)`` when an assignment target hits a state column."""
    if isinstance(node, ast.Attribute) and node.attr in COLUMNS:
        return node.attr, node.lineno
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr in COLUMNS:
            return value.attr, node.lineno
        if isinstance(value, ast.Attribute) and value.attr == "assignment":
            return "assignment", node.lineno
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            hit = _column_target(element)
            if hit is not None:
                return hit
    if isinstance(node, ast.Starred):
        return _column_target(node.value)
    return None


class _Visitor(FunctionStackVisitor):
    def __init__(self, rule: "TrailDisciplineRule", source: SourceFile) -> None:
        super().__init__()
        self.rule = rule
        self.source = source
        self.findings: List[Finding] = []
        self.extra = IMPLEMENTATION_EXTRA.get(source.path, frozenset())

    def _allowed_here(self) -> bool:
        name = self.function
        return name in PROTOCOL_FUNCTIONS or name in self.extra

    def _flag(self, targets: Iterable[ast.expr]) -> None:
        if self._allowed_here():
            return
        for target in targets:
            hit = _column_target(target)
            if hit is None:
                continue
            column, line = hit
            where = (
                f"function {self.function!r}"
                if self.functions
                else "module level"
            )
            self.findings.append(
                self.rule.finding(
                    self.source,
                    line,
                    "direct write to masked-evaluator state column "
                    f"{column!r} in {where}, outside the trail protocol",
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._flag(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._flag([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._flag(node.targets)
        self.generic_visit(node)


class TrailDisciplineRule(Rule):
    name = "trail-discipline"
    description = (
        "masked-evaluator state columns are only written through the "
        "trail protocol (push/pop/apply_patch/rewind_to)"
    )
    hint = (
        "route the write through push()/apply_patch() so the trail records "
        "the old value and pop()/rewind_to() can restore it; see "
        "docs/ARCHITECTURE.md, 'Enforced invariants'"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        visitor = _Visitor(self, source)
        visitor.visit(source.tree)
        return visitor.findings


RULE = register_rule(TrailDisciplineRule())
