"""The lint framework: findings, rules, suppressions, file collection.

``repro check`` (:mod:`repro.analysis.runner`) walks the repository's
Python sources once, parses each file into an AST, and hands the parsed
:class:`SourceFile` to every registered rule whose scope covers it.
Rules return :class:`Finding` records (file:line, message, fix hint);
the framework filters them through ``# repro: allow[rule-name]``
suppression comments (on the flagged line or the line directly above;
``allow[*]`` suppresses every rule) and sorts the survivors.

Two rule shapes exist:

* :class:`Rule` — per-file AST lints (``check(source_file)``);
* :class:`ProjectRule` — whole-repository checks that need more than
  one file or non-AST inputs (``check_project(root, files)``), e.g. the
  Python↔C kernel drift detector.

Rules register themselves at import time via :func:`register_rule`;
:func:`load_rules` imports the rule modules exactly once.
"""

from __future__ import annotations

import ast
import importlib
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

#: Rule modules imported by :func:`load_rules`; each registers one rule.
_RULE_MODULES = (
    "trail_discipline",
    "registry_dispatch",
    "barrier_determinism",
    "wire_format",
    "kernel_hygiene",
    "c_twin",
)

#: Directories (relative to the repo root) the checker walks.
SOURCE_DIRS = ("src", "benchmarks")

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    hint: str = ""

    def format(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file plus its suppression map."""

    path: str  # repo-relative, posix separators
    text: str
    tree: ast.Module
    #: line number -> rule names allowed on that line (``*`` = all).
    allow: Mapping[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()


def parse_allow(text: str) -> Dict[int, FrozenSet[str]]:
    """Extract ``# repro: allow[...]`` suppressions, by line number."""
    allow: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if "repro" not in line:
            continue
        names: set = set()
        for match in _ALLOW_RE.finditer(line):
            names.update(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
        if names:
            allow[number] = frozenset(names)
    return allow


def load_source(root: str, relpath: str) -> SourceFile:
    with open(os.path.join(root, relpath), encoding="utf-8") as handle:
        text = handle.read()
    return source_from_text(relpath, text)


def source_from_text(relpath: str, text: str) -> SourceFile:
    """Parse source text into a :class:`SourceFile` (test seam)."""
    tree = ast.parse(text, filename=relpath)
    return SourceFile(
        path=relpath.replace(os.sep, "/"),
        text=text,
        tree=tree,
        allow=parse_allow(text),
    )


def iter_source_paths(root: str) -> Iterator[str]:
    """Repo-relative paths of every checked ``.py`` file, sorted."""
    found: List[str] = []
    for base in SOURCE_DIRS:
        top = os.path.join(root, base)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__",)
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    found.append(rel.replace(os.sep, "/"))
    return iter(sorted(found))


class Rule:
    """A per-file AST lint.

    Subclasses set ``name``/``description``/``hint`` and implement
    :meth:`check`; :meth:`applies` scopes the rule to a subset of the
    repository (the default is every collected file).
    """

    name: str = ""
    description: str = ""
    hint: str = ""

    def applies(self, relpath: str) -> bool:
        return True

    def check(self, source: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=source.path,
            line=line,
            message=message,
            hint=self.hint,
        )


class ProjectRule(Rule):
    """A whole-repository check (cross-file or non-AST inputs)."""

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(
        self, root: str, files: Mapping[str, SourceFile]
    ) -> Iterable[Finding]:
        raise NotImplementedError


_RULES: Dict[str, Rule] = {}
_rules_loaded = False


def register_rule(rule: Rule) -> Rule:
    if not rule.name:
        raise ValueError("rules need a name")
    if rule.name in _RULES:
        raise ValueError(f"rule {rule.name!r} is already registered")
    _RULES[rule.name] = rule
    return rule


def load_rules() -> Tuple[Rule, ...]:
    """All registered rules, importing the rule modules on first use."""
    global _rules_loaded
    if not _rules_loaded:
        _rules_loaded = True
        package = __name__.rsplit(".", 1)[0]
        for module in _RULE_MODULES:
            importlib.import_module(f"{package}.{module}")
    return tuple(_RULES[name] for name in sorted(_RULES))


def suppressed(source: Optional[SourceFile], finding: Finding) -> bool:
    """Is the finding covered by an allow comment on or above its line?"""
    if source is None:
        return False
    for line in (finding.line, finding.line - 1):
        names = source.allow.get(line)
        if names and (finding.rule in names or "*" in names):
            return True
    return False


def run_check(
    root: str,
    paths: Optional[Iterable[str]] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run every rule over the repository; returns surviving findings.

    ``paths`` restricts the per-file rules to a subset of files
    (repo-relative); project rules always see the full collected set so
    partial runs cannot silently skip the cross-file checks.
    """
    selected = list(rules) if rules is not None else list(load_rules())
    files: Dict[str, SourceFile] = {}
    for relpath in iter_source_paths(root):
        try:
            files[relpath] = load_source(root, relpath)
        except SyntaxError as exc:
            files[relpath] = SourceFile(relpath, "", ast.Module([], []), {})
            return [
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
    wanted = set(paths) if paths is not None else None
    findings: List[Finding] = []
    for rule in selected:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(root, files):
                if not suppressed(files.get(finding.path), finding):
                    findings.append(finding)
            continue
        for relpath, source in files.items():
            if wanted is not None and relpath not in wanted:
                continue
            if not rule.applies(relpath):
                continue
            for finding in rule.check(source):
                if not suppressed(source, finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


class FunctionStackVisitor(ast.NodeVisitor):
    """An AST visitor tracking the enclosing function/class names.

    ``self.functions`` / ``self.classes`` are innermost-last stacks that
    rules use to scope checks ("inside ``push``", "in a ``*Frame``
    class").
    """

    def __init__(self) -> None:
        self.functions: List[str] = []
        self.classes: List[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.functions.append(node.name)
        self.generic_visit(node)
        self.functions.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.functions.append(node.name)
        self.generic_visit(node)
        self.functions.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.classes.append(node.name)
        self.generic_visit(node)
        self.classes.pop()

    @property
    def function(self) -> str:
        return self.functions[-1] if self.functions else "<module>"

    @property
    def class_name(self) -> str:
        return self.classes[-1] if self.classes else ""


def resolve_import(
    relpath: str, node: "ast.Import | ast.ImportFrom"
) -> List[Tuple[str, int]]:
    """Absolute dotted module names an import statement binds.

    Relative imports are resolved against the file's package path (files
    under ``src/`` are rooted at the package, e.g.
    ``src/repro/engine/x.py`` lives in package ``repro.engine``).  For
    ``from M import a, b`` both ``M`` and ``M.a``/``M.b`` are reported,
    so bans on a module catch both importing it and importing from it.
    """
    results: List[Tuple[str, int]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            results.append((alias.name, node.lineno))
        return results
    package_parts: List[str] = []
    parts = relpath.replace(os.sep, "/").split("/")
    if parts and parts[0] == "src":
        package_parts = parts[1:-1]
    base = ""
    if node.level:
        keep = len(package_parts) - (node.level - 1)
        if keep < 0:
            keep = 0
        base = ".".join(package_parts[:keep])
    module = node.module or ""
    prefix = ".".join(p for p in (base, module) if p)
    if prefix:
        results.append((prefix, node.lineno))
    for alias in node.names:
        if alias.name == "*":
            continue
        full = f"{prefix}.{alias.name}" if prefix else alias.name
        results.append((full, node.lineno))
    return results
