"""Static analysis for the repro codebase: ``repro check``.

AST-walking lint rules that enforce the repository's standing
invariants — trail discipline in the masked evaluators, registry-only
scheme dispatch, deterministic distributed barriers, plain-scalar patch
wire format, kernel-tier import hygiene, and Python↔C kernel twin
correspondence.  See ``docs/ARCHITECTURE.md``, section "Enforced
invariants".
"""

from .core import (
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    load_rules,
    register_rule,
    run_check,
    source_from_text,
)
from .runner import main

__all__ = [
    "Finding",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "load_rules",
    "main",
    "register_rule",
    "run_check",
    "source_from_text",
]
