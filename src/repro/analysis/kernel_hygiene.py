"""kernel-tier hygiene: compiled-tier access lives in engine/kernels.py.

The kernel tier ladder (numba jit, ctypes-loaded native C, interpreted,
python) is deliberately confined to :mod:`repro.engine.kernels`: that
module owns backend construction, per-process self-validation against
the Python oracle, fallback on failure, and the ``BACKEND_ERRORS``
diagnostics.  A ``numba`` or ``ctypes`` import anywhere else creates a
second compiled path that skips all of it — no validation sweep, no
recorded rejection reason, no tier reporting in ``result.extra`` — and
reintroduces the hard optional-dependency coupling the ladder exists to
absorb (numba is absent from the base install).

Everything under ``src/repro/`` except ``engine/kernels.py`` is in
scope; benchmarks and tests may import what they measure.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Finding, Rule, SourceFile, register_rule

KERNEL_MODULE = "src/repro/engine/kernels.py"
BANNED_ROOTS = ("numba", "ctypes")


class KernelHygieneRule(Rule):
    name = "kernel-hygiene"
    description = (
        "no numba/ctypes imports outside engine/kernels.py: every "
        "compiled tier goes through the validated backend ladder"
    )
    hint = (
        "use repro.engine.kernels (get_backend/make_masked_evaluator) "
        "instead of importing numba/ctypes directly — backends there are "
        "self-validated against the Python oracle before first use"
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and relpath != KERNEL_MODULE

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name.split(".")[0] in BANNED_ROOTS:
                    findings.append(
                        self.finding(
                            source,
                            node.lineno,
                            f"compiled-tier import {name.split('.')[0]!r} "
                            "outside engine/kernels.py bypasses the "
                            "validated backend ladder",
                        )
                    )
        return findings


RULE = register_rule(KernelHygieneRule())
