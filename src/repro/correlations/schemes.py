"""Correlation schemes for probabilistic input data (paper, Section 5).

The paper evaluates ENFrame under three lineage schemes, each assigning a
Boolean event ``Φ(o_l)`` over the variable pool to every data point:

* **positive** — each event is a disjunction of ``l`` distinct positive
  literals; any two points are positively correlated or independent.
* **mutex** — points are partitioned into mutex sets of cardinality at
  most ``m``: within a set any two points are mutually exclusive,
  across sets they are independent.
* **conditional** — a Markov chain: ``Φ_{i+1} = (Φ_i ∧ xt_{i+1}) ∨
  (¬Φ_i ∧ xf_{i+1})``, introducing two fresh variables per point.
* **independent** — one fresh variable per point (the model assumed by
  most prior art; included for comparison).

All schemes support *group lineage* ("data points were divided in groups
with identical lineage", group size 4 in the paper — realistic for
time-series sensor readings from a small time window) and a fraction of
*certain* points (``Φ = ⊤``), used in Figure 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..events.expressions import TRUE, Event, conj, disj, negate, var
from ..worlds.variables import VariablePool


@dataclass
class Lineage:
    """Lineage events for a set of data points over a shared pool."""

    pool: VariablePool
    events: List[Event]

    def __len__(self) -> int:
        return len(self.events)

    @property
    def variable_count(self) -> int:
        return len(self.pool)

    def certain_count(self) -> int:
        return sum(1 for event in self.events if event is TRUE)


def _grouped(count: int, group_size: int) -> List[int]:
    """Group index per data point (consecutive points share lineage)."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    return [index // group_size for index in range(count)]


def _apply_certain(
    events: List[Event],
    certain_fraction: float,
    rng: random.Random,
) -> List[Event]:
    """Make a fraction of the points certain (Φ = ⊤), chosen at random."""
    if not 0.0 <= certain_fraction <= 1.0:
        raise ValueError("certain_fraction must be in [0, 1]")
    if certain_fraction == 0.0:
        return events
    count = int(round(certain_fraction * len(events)))
    chosen = set(rng.sample(range(len(events)), count))
    return [
        TRUE if index in chosen else event for index, event in enumerate(events)
    ]


def positive_lineage(
    count: int,
    variables: int,
    rng: random.Random,
    literals: int = 8,
    group_size: int = 4,
    certain_fraction: float = 0.0,
    prob_low: float = 0.5,
    prob_high: float = 0.8,
) -> Lineage:
    """Positive correlations: each event is a disjunction of ``literals``
    distinct positive literals over a pool of ``variables`` variables."""
    if literals > variables:
        raise ValueError("cannot draw more literals than variables")
    pool = VariablePool()
    for _ in range(variables):
        pool.add(rng.uniform(prob_low, prob_high))
    events: List[Event] = []
    group_events: Dict[int, Event] = {}
    for group in _grouped(count, group_size):
        if group not in group_events:
            chosen = rng.sample(range(variables), literals)
            group_events[group] = disj([var(index) for index in sorted(chosen)])
        events.append(group_events[group])
    return Lineage(pool, _apply_certain(events, certain_fraction, rng))


def mutex_lineage(
    count: int,
    rng: random.Random,
    mutex_size: int = 12,
    group_size: int = 4,
    certain_fraction: float = 0.0,
    prob_low: float = 0.5,
    prob_high: float = 0.8,
) -> Lineage:
    """Mutex correlations: groups are partitioned into mutex sets.

    Each mutex set of ``m`` lineage groups uses ``m`` fresh variables
    ``x_1..x_m``; group ``j`` of the set receives the event
    ``x_j ∧ ¬x_1 ∧ ... ∧ ¬x_{j-1}``, so at most one group of the set is
    present in any world and groups in different sets are independent.
    """
    if mutex_size < 1:
        raise ValueError("mutex_size must be >= 1")
    pool = VariablePool()
    groups = _grouped(count, group_size)
    group_count = (groups[-1] + 1) if groups else 0
    group_events: List[Event] = []
    position = 0
    set_vars: List[int] = []
    for group in range(group_count):
        if position == 0:
            set_vars = [
                pool.add(rng.uniform(prob_low, prob_high))
                for _ in range(min(mutex_size, group_count - group))
            ]
        literals: List[Event] = [var(set_vars[position])]
        literals.extend(negate(var(index)) for index in set_vars[:position])
        group_events.append(conj(literals))
        position = (position + 1) % len(set_vars)
    events = [group_events[group] for group in groups]
    return Lineage(pool, _apply_certain(events, certain_fraction, rng))


def conditional_lineage(
    count: int,
    rng: random.Random,
    group_size: int = 4,
    certain_fraction: float = 0.0,
    prob_low: float = 0.5,
    prob_high: float = 0.8,
) -> Lineage:
    """Conditional correlations: lineage groups form a Markov chain.

    ``Φ_0 = x_0``; ``Φ_{i+1} = (Φ_i ∧ xt_{i+1}) ∨ (¬Φ_i ∧ xf_{i+1})`` with
    two fresh variables per group (paper, Section 5 "Uncertainty").
    """
    pool = VariablePool()
    groups = _grouped(count, group_size)
    group_count = (groups[-1] + 1) if groups else 0
    group_events: List[Event] = []
    previous: Optional[Event] = None
    for group in range(group_count):
        if previous is None:
            current: Event = var(pool.add(rng.uniform(prob_low, prob_high)))
        else:
            x_true = var(pool.add(rng.uniform(prob_low, prob_high)))
            x_false = var(pool.add(rng.uniform(prob_low, prob_high)))
            current = disj(
                [conj([previous, x_true]), conj([negate(previous), x_false])]
            )
        group_events.append(current)
        previous = current
    events = [group_events[group] for group in groups]
    return Lineage(pool, _apply_certain(events, certain_fraction, rng))


def independent_lineage(
    count: int,
    rng: random.Random,
    group_size: int = 1,
    certain_fraction: float = 0.0,
    prob_low: float = 0.5,
    prob_high: float = 0.8,
) -> Lineage:
    """Tuple-independent lineage: one fresh variable per lineage group."""
    pool = VariablePool()
    groups = _grouped(count, group_size)
    group_count = (groups[-1] + 1) if groups else 0
    group_events = [
        var(pool.add(rng.uniform(prob_low, prob_high))) for _ in range(group_count)
    ]
    events = [group_events[group] for group in groups]
    return Lineage(pool, _apply_certain(events, certain_fraction, rng))


SCHEME_FACTORIES: Dict[str, Callable[..., Lineage]] = {
    "positive": positive_lineage,
    "mutex": mutex_lineage,
    "conditional": conditional_lineage,
    "independent": independent_lineage,
}


def make_lineage(scheme: str, count: int, rng: random.Random, **options) -> Lineage:
    """Dispatch on a scheme name; see the per-scheme factories for options."""
    if scheme not in SCHEME_FACTORIES:
        raise ValueError(
            f"unknown correlation scheme {scheme!r}; "
            f"expected one of {sorted(SCHEME_FACTORIES)}"
        )
    return SCHEME_FACTORIES[scheme](count, rng=rng, **options)
