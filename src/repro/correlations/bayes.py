"""Discrete Bayesian networks compiled to lineage events.

Events "can succinctly encode instances of such formalisms as Bayesian
networks and pc-tables" (Section 3).  This module makes that concrete
for Boolean Bayesian networks: every node gets, per parent configuration,
a fresh independent variable carrying the conditional probability; the
node's event is then built by case analysis over the parents.  The
conditional-correlations Markov chain of the evaluation (Section 5) is
exactly the chain special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import itertools

from ..events.expressions import Event, conj, disj, negate, var
from ..worlds.variables import VariablePool


@dataclass
class BayesNode:
    """A Boolean BN node: parents plus a CPT over parent configurations.

    ``cpt`` maps each tuple of parent truth values (ordered as
    ``parents``) to ``P(node = true | configuration)``.  Root nodes use
    the empty tuple as the single key.
    """

    name: str
    parents: Tuple[str, ...]
    cpt: Dict[Tuple[bool, ...], float]

    def __post_init__(self) -> None:
        expected = 2 ** len(self.parents)
        if len(self.cpt) != expected:
            raise ValueError(
                f"node {self.name!r}: CPT must cover all {expected} parent "
                f"configurations, got {len(self.cpt)}"
            )


class BayesianNetwork:
    """A Boolean Bayesian network compiled to events over fresh variables."""

    def __init__(self) -> None:
        self._nodes: Dict[str, BayesNode] = {}
        self._order: List[str] = []

    def add_node(
        self,
        name: str,
        parents: Sequence[str] = (),
        cpt: Optional[Dict[Tuple[bool, ...], float]] = None,
        probability: Optional[float] = None,
    ) -> None:
        """Add a node; roots may pass ``probability`` instead of a CPT."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already exists")
        for parent in parents:
            if parent not in self._nodes:
                raise ValueError(
                    f"parent {parent!r} of {name!r} must be added first"
                )
        if cpt is None:
            if probability is None or parents:
                raise ValueError(
                    f"node {name!r}: pass a CPT (or a probability for roots)"
                )
            cpt = {(): probability}
        self._nodes[name] = BayesNode(name, tuple(parents), dict(cpt))
        self._order.append(name)

    def compile(self, pool: VariablePool) -> Dict[str, Event]:
        """Compile every node to an event over fresh pool variables.

        For node ``X`` with parents ``P1..Pm`` the encoding introduces a
        fresh variable ``x_c`` per parent configuration ``c`` with
        marginal ``P(X | c)`` and defines

            ``Φ(X) = ∨_c ( parents-match-c ∧ x_c )``

        which yields exactly the network's joint distribution (the chain
        rule, one independent coin per CPT row).
        """
        events: Dict[str, Event] = {}
        for name in self._order:
            node = self._nodes[name]
            cases: List[Event] = []
            for configuration in itertools.product(
                (True, False), repeat=len(node.parents)
            ):
                coin = var(
                    pool.add(
                        node.cpt[configuration],
                        name=f"{name}|{''.join('T' if v else 'F' for v in configuration)}",
                    )
                )
                literals: List[Event] = []
                for parent, value in zip(node.parents, configuration):
                    parent_event = events[parent]
                    literals.append(
                        parent_event if value else negate(parent_event)
                    )
                cases.append(conj(literals + [coin]))
            events[name] = disj(cases)
        return events

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._order)


def markov_chain(
    length: int,
    pool: VariablePool,
    start: float = 0.6,
    stay: float = 0.7,
    flip: float = 0.3,
) -> List[Event]:
    """A Boolean Markov chain as a Bayesian network (Section 5's
    conditional-correlations scheme with explicit transition CPTs)."""
    network = BayesianNetwork()
    network.add_node("s0", probability=start)
    for index in range(1, length):
        network.add_node(
            f"s{index}",
            parents=(f"s{index - 1}",),
            cpt={(True,): stay, (False,): flip},
        )
    events = network.compile(pool)
    return [events[f"s{index}"] for index in range(length)]
