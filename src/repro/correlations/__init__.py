"""Correlation models: the paper's lineage schemes and Bayesian networks."""

from .bayes import BayesianNetwork, BayesNode, markov_chain
from .schemes import (
    Lineage,
    SCHEME_FACTORIES,
    conditional_lineage,
    independent_lineage,
    make_lineage,
    mutex_lineage,
    positive_lineage,
)

__all__ = [
    "BayesNode",
    "BayesianNetwork",
    "Lineage",
    "SCHEME_FACTORIES",
    "conditional_lineage",
    "independent_lineage",
    "make_lineage",
    "markov_chain",
    "mutex_lineage",
    "positive_lineage",
]
