"""ENFrame: a platform for processing probabilistic data.

A from-scratch Python reproduction of "ENFrame: A Platform for Processing
Probabilistic Data" (van Schaik, Olteanu, Fink — EDBT 2014): user
programs over uncertain input are interpreted under the possible-worlds
semantics by tracing them with fine-grained provenance events, compiling
the events into networks, and computing output probabilities exactly or
with anytime ε-guarantees, sequentially or distributed.

Quickstart::

    from repro import ENFrame, KMedoidsSpec

    platform = ENFrame.from_sensor_data(24, scheme="mutex", seed=1)
    platform.kmedoids(KMedoidsSpec(k=2, iterations=3))
    print(platform.run(scheme="hybrid", epsilon=0.1).summary())
"""

from .core import ENFrame, ProbabilisticResult
from .data import ProbabilisticDataset, certain_dataset, sensor_dataset
from .engine.registry import SchemeOptions
from .mining import KMeansSpec, KMedoidsSpec, MCLSpec
from .session import WhatIfSession
from .worlds import VariablePool

__version__ = "1.0.0"

__all__ = [
    "ENFrame",
    "KMeansSpec",
    "KMedoidsSpec",
    "MCLSpec",
    "ProbabilisticDataset",
    "ProbabilisticResult",
    "SchemeOptions",
    "VariablePool",
    "WhatIfSession",
    "certain_dataset",
    "sensor_dataset",
    "__version__",
]
